"""Topology metrics: survivability of the discovery graph.

The MILCOM companion paper grounds the topology argument in the complex-
networks literature: "properties such as low characteristic path length …
good clustering … and robustness to random and targeted failure are all
important for survivability". These functions compute exactly those
metrics over the *discovery graph* — registries as super-peers, clients
and services attached to their registry — using networkx.
"""

from __future__ import annotations

import networkx as nx

from repro.core.system import DiscoverySystem


def discovery_graph(system: DiscoverySystem, *, alive_only: bool = True) -> nx.Graph:
    """The deployment as an undirected graph.

    Edges: federation links between registries; attachment links from
    clients/services to their current registry. In registry-less
    (decentralized) deployments, LAN members form a clique — every node
    can reach every other directly via multicast.
    """
    graph = nx.Graph()
    nodes = list(system.registries) + list(system.services) + list(system.clients)
    for node in nodes:
        if alive_only and not node.alive:
            continue
        graph.add_node(node.node_id, role=node.role, lan=node.lan_name)
    for registry in system.registries:
        if alive_only and not registry.alive:
            continue
        for neighbor in registry.federation.neighbors:
            if graph.has_node(neighbor):
                graph.add_edge(registry.node_id, neighbor)
    for node in list(system.services) + list(system.clients):
        if alive_only and not node.alive:
            continue
        current = node.tracker.current
        if current is not None and graph.has_node(current):
            graph.add_edge(node.node_id, current)
    if not system.registries:
        # Pure decentralized topology: LAN multicast connects everyone.
        by_lan: dict[str, list[str]] = {}
        for node in nodes:
            if alive_only and not node.alive:
                continue
            by_lan.setdefault(node.lan_name or "", []).append(node.node_id)
        for members in by_lan.values():
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    graph.add_edge(a, b)
    return graph


def characteristic_path_length(graph: nx.Graph) -> float:
    """Average shortest-path length of the largest connected component.

    Returns 0.0 for graphs with fewer than two reachable nodes.
    """
    if graph.number_of_nodes() < 2:
        return 0.0
    components = list(nx.connected_components(graph))
    largest = max(components, key=len)
    if len(largest) < 2:
        return 0.0
    return nx.average_shortest_path_length(graph.subgraph(largest))


def clustering_coefficient(graph: nx.Graph) -> float:
    """Average clustering coefficient (0.0 for empty graphs)."""
    if graph.number_of_nodes() == 0:
        return 0.0
    return nx.average_clustering(graph)


def largest_component_fraction(graph: nx.Graph) -> float:
    """Fraction of nodes inside the largest connected component."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    return max(len(c) for c in nx.connected_components(graph)) / n


def reachability_under_removal(
    graph: nx.Graph,
    removal_order: list[str],
) -> list[float]:
    """Largest-component fraction after each successive node removal.

    ``removal_order`` comes from an attack plan (random or targeted);
    the returned series is the survivability curve of E11. Fractions are
    relative to the *original* node count, so the curve is monotone
    non-increasing even as nodes disappear.
    """
    working = graph.copy()
    original = graph.number_of_nodes()
    series: list[float] = []
    for node_id in removal_order:
        if working.has_node(node_id):
            working.remove_node(node_id)
        if working.number_of_nodes() == 0 or original == 0:
            series.append(0.0)
            continue
        largest = max((len(c) for c in nx.connected_components(working)), default=0)
        series.append(largest / original)
    return series


def degree_of(graph: nx.Graph, node_id: str) -> int:
    """Degree of a node (0 if absent) — the targeted-attack value function."""
    return graph.degree(node_id) if graph.has_node(node_id) else 0
