"""Staleness: obsolete advertisements and obsolete responses.

The paper's freshness requirement: "The responses to queries should
mirror the current state in the service network and should not return
obsolete service descriptions that represent services that are no longer
present on the network."

Two measures:

* :func:`response_staleness` — of the hits returned to clients, what
  fraction named a service whose node was dead at response time? This is
  the user-visible failure.
* :func:`registry_staleness` — of the advertisements currently stored in
  registries, what fraction belong to dead services? This is the systemic
  rot that leasing drains and UDDI accumulates (E4).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.registry_node import RegistryNode
from repro.core.system import DiscoverySystem
from repro.workloads.queries import IssuedQuery


def _dead_services(system: DiscoverySystem) -> frozenset[str]:
    return frozenset(
        service.profile.service_name for service in system.services if not service.alive
    )


def response_staleness(
    issued: Iterable[IssuedQuery],
    dead_at_completion: dict[str, frozenset[str]],
) -> float:
    """Fraction of returned hits that named a dead service.

    ``dead_at_completion`` maps each call's ``query_id`` to the set of
    service names dead when the call completed (recorded by the
    experiment loop at completion time, since liveness changes during a
    run).
    """
    returned = 0
    stale = 0
    for query in issued:
        if not query.call.completed:
            continue
        dead = dead_at_completion.get(query.call.query_id, frozenset())
        for name in query.call.service_names():
            returned += 1
            if name in dead:
                stale += 1
    return stale / returned if returned else 0.0


def registry_staleness(system: DiscoverySystem) -> float:
    """Fraction of advertisements stored registry-wide whose service is dead."""
    dead = _dead_services(system)
    total = 0
    stale = 0
    for registry in system.registries:
        if not registry.alive:
            continue
        for ad in registry.store.all():
            total += 1
            if ad.service_name in dead:
                stale += 1
    return stale / total if total else 0.0


def stale_ads_in(registry: RegistryNode, dead_names: frozenset[str]) -> int:
    """Count of one registry's advertisements naming dead services."""
    return sum(1 for ad in registry.store.all() if ad.service_name in dead_names)
