"""Per-phase bandwidth accounting.

Experiments separate the cost of *maintenance* (beacons, pings, renewals,
gossip) from the cost of *query* traffic: the paper's bandwidth claims are
about both, but they scale differently (maintenance with time and
population; queries with query load). A :class:`TrafficWindow` brackets a
phase and reports the delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.stats import TrafficStats


@dataclass
class TrafficWindow:
    """Deltas of the traffic counters over a bracketed phase.

    Usage::

        window = TrafficWindow.open(network.stats, sim.now)
        ...  # run the phase
        report = window.close(sim.now)
        report["bytes_sent"], report["bytes_per_second"]
    """

    stats: TrafficStats
    opened_at: float
    baseline: dict[str, int] = field(default_factory=dict)
    type_baseline: dict[str, int] = field(default_factory=dict)

    @staticmethod
    def open(stats: TrafficStats, now: float) -> "TrafficWindow":
        """Start a measurement window at simulated time ``now``."""
        return TrafficWindow(
            stats=stats,
            opened_at=now,
            baseline=stats.snapshot(),
            type_baseline=dict(stats.by_type_bytes),
        )

    def close(self, now: float) -> dict[str, float]:
        """Scalar deltas since open, plus the per-second rate."""
        delta = self.stats.delta_since(self.baseline)
        duration = max(now - self.opened_at, 1e-9)
        report: dict[str, float] = dict(delta)
        report["duration"] = duration
        report["bytes_per_second"] = delta["bytes_sent"] / duration
        report["messages_per_second"] = delta["messages_sent"] / duration
        return report

    def bytes_by_type(self) -> dict[str, int]:
        """Per-message-type byte deltas since open (e.g. 'publish', 'query')."""
        return {
            msg_type: self.stats.by_type_bytes[msg_type] - self.type_baseline.get(msg_type, 0)
            for msg_type in self.stats.by_type_bytes
            if self.stats.by_type_bytes[msg_type] != self.type_baseline.get(msg_type, 0)
        }

    def maintenance_bytes(self) -> int:
        """Bytes spent on registry-network upkeep rather than queries."""
        maintenance_types = {
            "registry-beacon", "registry-probe", "registry-probe-reply",
            "registry-ping", "registry-pong", "registry-list-request",
            "registry-list-reply", "federation-join", "federation-join-ack",
            "federation-leave", "renew", "renew-ack", "renew-nack",
            "publish", "publish-ack", "ad-forward",
        }
        return sum(
            bytes_ for msg_type, bytes_ in self.bytes_by_type().items()
            if msg_type in maintenance_types
        )

    def query_bytes(self) -> int:
        """Bytes spent carrying queries and responses."""
        query_types = {
            "query", "query-forward", "query-response",
            "walk", "walk-hits", "walk-end",
            "decentral-query", "decentral-response",
        }
        return sum(
            bytes_ for msg_type, bytes_ in self.bytes_by_type().items()
            if msg_type in query_types
        )
