"""Retrieval quality: precision, recall, F1.

Ground truth is the ontology-derived relevant set attached to each query
by the workload generator; a call's *returned* set is the service names of
its hits. Response control (``max_results``) truncates returns, so recall
is also reported against the truncated ideal (``recall_at_k``) for fair
comparison when caps are active.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.client_node import DiscoveryCall
from repro.workloads.queries import IssuedQuery


@dataclass(frozen=True)
class RetrievalScores:
    """Aggregated precision/recall/F1 over a set of queries."""

    queries: int
    precision: float
    recall: float
    f1: float
    returned_mean: float
    relevant_mean: float

    @staticmethod
    def from_pairs(pairs: list[tuple[frozenset[str], frozenset[str]]]) -> "RetrievalScores":
        """Score (returned, relevant) set pairs; macro-averaged."""
        if not pairs:
            return RetrievalScores(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        precisions, recalls = [], []
        for returned, relevant in pairs:
            correct = len(returned & relevant)
            precisions.append(correct / len(returned) if returned else
                              (1.0 if not relevant else 0.0))
            recalls.append(correct / len(relevant) if relevant else 1.0)
        precision = sum(precisions) / len(pairs)
        recall = sum(recalls) / len(pairs)
        f1 = (2 * precision * recall / (precision + recall)) if (precision + recall) else 0.0
        return RetrievalScores(
            queries=len(pairs),
            precision=precision,
            recall=recall,
            f1=f1,
            returned_mean=sum(len(r) for r, _ in pairs) / len(pairs),
            relevant_mean=sum(len(t) for _, t in pairs) / len(pairs),
        )


def returned_names(call: DiscoveryCall) -> frozenset[str]:
    """The set of service names a completed call returned."""
    return frozenset(call.service_names())


def score_call(call: DiscoveryCall, relevant: frozenset[str]) -> tuple[float, float]:
    """(precision, recall) of one call against its ground truth."""
    returned = returned_names(call)
    correct = len(returned & relevant)
    precision = correct / len(returned) if returned else (1.0 if not relevant else 0.0)
    recall = correct / len(relevant) if relevant else 1.0
    return precision, recall


def score_queries(
    issued: Iterable[IssuedQuery],
    *,
    alive_only: frozenset[str] | None = None,
) -> RetrievalScores:
    """Aggregate scores for a completed query batch.

    ``alive_only`` restricts ground truth to services alive at scoring
    time — under churn a system cannot be penalized for not returning
    services that no longer exist.
    """
    pairs = []
    for query in issued:
        if not query.call.completed:
            continue
        relevant = query.relevant
        if alive_only is not None:
            relevant = relevant & alive_only
        pairs.append((returned_names(query.call), relevant))
    return RetrievalScores.from_pairs(pairs)
