"""Measurement: the quantities the paper argues about.

* :mod:`~repro.metrics.retrieval` — precision/recall/F1 of discovery
  results against ontology ground truth (E5) and discovery recall against
  the live service population (E1/E7/E8).
* :mod:`~repro.metrics.staleness` — obsolete-advertisement measures: the
  paper's "responses to queries … should not return obsolete service
  descriptions" requirement (E4).
* :mod:`~repro.metrics.bandwidth` — per-phase traffic accounting built on
  :class:`~repro.netsim.stats.TrafficStats` (E1/E6/E7/E8/E10).
* :mod:`~repro.metrics.topology` — graph metrics of the deployment
  (characteristic path length, clustering, reachability under attack) via
  networkx, matching the survivability literature the MILCOM paper cites
  (E11).
"""

from repro.metrics.retrieval import RetrievalScores, score_call, score_queries
from repro.metrics.staleness import registry_staleness, response_staleness
from repro.metrics.bandwidth import TrafficWindow
from repro.metrics.topology import (
    characteristic_path_length,
    clustering_coefficient,
    discovery_graph,
    largest_component_fraction,
    reachability_under_removal,
)

__all__ = [
    "RetrievalScores",
    "TrafficWindow",
    "characteristic_path_length",
    "clustering_coefficient",
    "discovery_graph",
    "largest_component_fraction",
    "reachability_under_removal",
    "registry_staleness",
    "response_staleness",
    "score_call",
    "score_queries",
]
