"""Deterministic anomaly watchdogs over the metrics facade.

Each watchdog is a small detector evaluated on the health monitor's
periodic tick. Detectors read only deterministic inputs — instrument
values in the run's :class:`~repro.obs.metrics.MetricsRegistry`, the
liveness/lease feeds the protocol agents push into the
:class:`~repro.obs.health.HealthMonitor`, and the injected sim-time
clock — so two same-seed runs raise byte-identical alarm streams.

Alarms fire on the **rising edge** only: a detector that stays in its
tripped condition across many ticks raises one alarm when the condition
appears and re-arms after it clears, so a dead registry produces one
staleness alarm, not one per second.

The five stock detectors map to the failure modes the experiments
inject:

* :class:`QueueDepthGrowth` — sustained admission-queue depth (the
  time-weighted gauge mean stays above threshold while still rising):
  an overload flood, before goodput visibly collapses;
* :class:`BreakerFlapping` — open→half-open→open cycles accumulating in
  the ``breaker.flaps`` counter: a neighbor that is down or unreachable
  long enough for probes to keep failing (crash, partition);
* :class:`AntiEntropyStaleness` — a replicating registry whose periodic
  reconciliation round has not been seen for too long: the node is dead
  or its periodic machinery wedged;
* :class:`LeaseExpirySpike` — a burst of lease expiries: renewals are
  not landing (partition starving replica refreshes, registry death
  taking a population of leases with it);
* :class:`ShedRateStep` — a step in the ``admission.shed`` counter:
  the registry started refusing work.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.health import HealthMonitor


@dataclass(frozen=True)
class Alarm:
    """One watchdog (or SLO) firing at a point in sim time."""

    name: str
    node: str
    time: float
    details: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        extra = " ".join(f"{k}={self.details[k]}" for k in sorted(self.details))
        where = f" [{self.node}]" if self.node else ""
        return f"t={self.time:g} {self.name}{where}{' ' + extra if extra else ''}"


class Watchdog:
    """Base detector: rising-edge alarm bookkeeping per scope key."""

    #: Detector name; becomes the alarm name and the per-detector counter.
    name = "watchdog"

    def __init__(self) -> None:
        #: Scope keys (node ids, or "" for global) currently tripped.
        self._tripped: set[str] = set()

    def check(self, monitor: "HealthMonitor", now: float) -> list[Alarm]:
        """Evaluate the detector; returns newly raised alarms."""
        raise NotImplementedError

    def _edge(self, key: str, condition: bool) -> bool:
        """True exactly when ``condition`` newly became true for ``key``."""
        if condition:
            if key in self._tripped:
                return False
            self._tripped.add(key)
            return True
        self._tripped.discard(key)
        return False


class _CounterDelta:
    """Shared helper: counter increase over a trailing sim-time window."""

    def __init__(self, window: float) -> None:
        self.window = window
        self._history: deque[tuple[float, int]] = deque(maxlen=4096)

    def delta(self, now: float, value: int) -> int:
        self._history.append((now, value))
        horizon = now - self.window
        baseline = value
        for t, v in self._history:
            if t >= horizon:
                baseline = v
                break
        while self._history and self._history[0][0] < horizon:
            self._history.popleft()
        return value - baseline


class QueueDepthGrowth(Watchdog):
    """Admission queue staying deep and still growing."""

    name = "queue-growth"

    def __init__(self, *, window: float, threshold: float) -> None:
        super().__init__()
        self.window = window
        self.threshold = threshold

    def check(self, monitor: "HealthMonitor", now: float) -> list[Alarm]:
        gauge = monitor.metrics.gauges.get("registry.queue_depth")
        if gauge is None:
            return []
        mean = gauge.mean_over(self.window, now=now)
        tripped = mean >= self.threshold and gauge.value >= mean
        if self._edge("", tripped):
            return [Alarm(self.name, "", now, {
                "mean_depth": round(mean, 3), "depth": gauge.value,
            })]
        return []


class BreakerFlapping(Watchdog):
    """Circuit breakers cycling open → half-open → open."""

    name = "breaker-flap"

    def __init__(self, *, window: float, threshold: int) -> None:
        super().__init__()
        self.threshold = threshold
        self._delta = _CounterDelta(window)

    def check(self, monitor: "HealthMonitor", now: float) -> list[Alarm]:
        counter = monitor.metrics.counters.get("breaker.flaps")
        flaps = self._delta.delta(now, counter.value if counter else 0)
        if self._edge("", flaps >= self.threshold):
            return [Alarm(self.name, "", now, {"flaps_in_window": flaps})]
        return []


class AntiEntropyStaleness(Watchdog):
    """A replicating registry whose reconciliation rounds went quiet."""

    name = "antientropy-stale"

    def __init__(self, *, stale_after: float) -> None:
        super().__init__()
        self.stale_after = stale_after

    def check(self, monitor: "HealthMonitor", now: float) -> list[Alarm]:
        alarms = []
        for node, last in sorted(monitor.liveness("antientropy-round").items()):
            if self._edge(node, now - last >= self.stale_after):
                alarms.append(Alarm(self.name, node, now, {
                    "silent_for": round(now - last, 3),
                }))
        return alarms


class LeaseExpirySpike(Watchdog):
    """A burst of lease expiries: renewals are not landing."""

    name = "lease-expiry-spike"

    def __init__(self, *, window: float, threshold: int) -> None:
        super().__init__()
        self.window = window
        self.threshold = threshold

    def check(self, monitor: "HealthMonitor", now: float) -> list[Alarm]:
        expiries = monitor.lease_events("expire", since=now - self.window)
        if self._edge("", len(expiries) >= self.threshold):
            nodes = sorted({node for _t, node in expiries})
            return [Alarm(self.name, nodes[0] if len(nodes) == 1 else "", now, {
                "expiries_in_window": len(expiries), "nodes": nodes,
            })]
        return []


class ShedRateStep(Watchdog):
    """The admission controller started refusing work."""

    name = "shed-step"

    def __init__(self, *, window: float, threshold: int) -> None:
        super().__init__()
        self.threshold = threshold
        self._delta = _CounterDelta(window)

    def check(self, monitor: "HealthMonitor", now: float) -> list[Alarm]:
        counter = monitor.metrics.counters.get("admission.shed")
        shed = self._delta.delta(now, counter.value if counter else 0)
        if self._edge("", shed >= self.threshold):
            return [Alarm(self.name, "", now, {"shed_in_window": shed})]
        return []
