"""Causal tracing for the discovery fabric, in sim-time.

A :class:`TraceRecorder` is owned by the
:class:`~repro.netsim.simulator.Simulator` and records **spans** (timed
operations: a client query, a registry fan-out) and **events** (instant
marks: a lease expiry, a breaker opening) as the simulation executes. The
causal context — ``(trace_id, span_id)`` — rides across hops inside
:attr:`~repro.netsim.messages.Envelope.headers` under
:data:`TRACE_ID_HEADER` / :data:`SPAN_ID_HEADER`, so one client query can
be followed end-to-end through registry receive, matchmaking, WAN
fan-out, aggregation, and the response (late ones included).

Determinism contract
--------------------
Exports must be byte-identical across two same-seed runs *in the same
process*. Two rules make that hold:

* trace/span ids are allocated from recorder-local counters (never from
  the process-global UUID counters, which keep advancing between runs);
* raw wire ids (query ids, ad ids, lease ids) never enter a record
  directly — :meth:`TraceRecorder.alias` interns them into run-local
  tokens like ``q~3`` in first-seen order, which *is* deterministic
  because event order is seed-deterministic.

All timestamps are ``sim.now`` floats; the wall clock is never read.
:meth:`export_jsonl` emits records in creation order with sorted keys and
canonical separators, so the bytes are a pure function of the run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

#: Envelope header keys carrying the causal context across hops. Headers
#: are free in the byte-size model, so tracing never perturbs bandwidth
#: accounting or medium occupancy.
TRACE_ID_HEADER = "trace-id"
SPAN_ID_HEADER = "span-id"

#: A propagated causal context: (trace_id, span_id).
TraceContext = "tuple[int, int]"


@dataclass
class Span:
    """One timed operation inside a trace."""

    trace_id: int
    span_id: int
    parent_id: int | None
    name: str
    node: str
    start: float
    end: float | None = None
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)
    #: Recorder-global creation sequence; fixes the export order.
    seq: int = 0

    @property
    def context(self) -> tuple[int, int]:
        """This span's propagable ``(trace_id, span_id)``."""
        return (self.trace_id, self.span_id)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass
class TraceEvent:
    """One instant mark, optionally attached to a span/trace."""

    trace_id: int | None
    span_id: int | None
    name: str
    node: str
    time: float
    attrs: dict[str, Any] = field(default_factory=dict)
    seq: int = 0


class TraceRecorder:
    """Records spans and events against an injected sim-time clock."""

    def __init__(self, clock: Callable[[], float], *, enabled: bool = True) -> None:
        self.clock = clock
        self.enabled = enabled
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self._seq = 0
        self._next_trace = 0
        self._next_span = 0
        self._aliases: dict[str, str] = {}
        self._alias_counts: dict[str, int] = {}
        #: Live subscribers (the runtime health layer's flight recorders):
        #: each closed span and each event is offered as a plain record
        #: dict. Empty by default — nothing is built or called unless a
        #: subscriber registered, so the default path is unchanged.
        self.observers: list[Callable[[dict[str, Any]], None]] = []

    def _notify(self, record: dict[str, Any]) -> None:
        for observer in self.observers:
            observer(record)

    # -- id management ----------------------------------------------------

    def alias(self, raw_id: str) -> str:
        """Intern a process-global wire id into a run-local token.

        ``"q-000412"`` becomes ``"q~1"`` (first ``q``-prefixed id seen),
        the same raw id always maps to the same token within a run, and
        the numbering restarts per recorder — so exported attributes stay
        identical across same-seed runs even though the underlying UUID
        counters do not.
        """
        token = self._aliases.get(raw_id)
        if token is None:
            prefix = "".join(ch for ch in raw_id.split("-", 1)[0] if ch.isalpha()) or "id"
            self._alias_counts[prefix] = self._alias_counts.get(prefix, 0) + 1
            token = f"{prefix}~{self._alias_counts[prefix]}"
            self._aliases[raw_id] = token
        return token

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- recording --------------------------------------------------------

    def start_span(
        self,
        name: str,
        *,
        node: str = "",
        ctx: tuple[int, int] | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """Open a span. ``ctx`` is the parent context; ``None`` starts a
        new root trace."""
        if ctx is None:
            self._next_trace += 1
            trace_id, parent_id = self._next_trace, None
        else:
            trace_id, parent_id = ctx
        self._next_span += 1
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span,
            parent_id=parent_id,
            name=name,
            node=node,
            start=self.clock(),
            attrs=dict(attrs or {}),
            seq=self._next_seq(),
        )
        if self.enabled:
            self.spans.append(span)
        return span

    def end_span(self, span: Span, *, status: str = "ok",
                 attrs: dict[str, Any] | None = None) -> None:
        """Close a span (idempotent: the first close wins)."""
        if span.end is not None:
            return
        span.end = self.clock()
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        if self.observers:
            self._notify({
                "t": span.end, "kind": "span", "name": span.name,
                "node": span.node, "start": span.start,
                "status": span.status, "attrs": dict(span.attrs),
            })

    def event(
        self,
        name: str,
        *,
        node: str = "",
        ctx: tuple[int, int] | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> TraceEvent:
        """Record an instant event, attached to ``ctx`` when given."""
        trace_id, span_id = ctx if ctx is not None else (None, None)
        record = TraceEvent(
            trace_id=trace_id,
            span_id=span_id,
            name=name,
            node=node,
            time=self.clock(),
            attrs=dict(attrs or {}),
            seq=self._next_seq(),
        )
        if self.enabled:
            self.events.append(record)
        if self.observers:
            self._notify({
                "t": record.time, "kind": "event", "name": record.name,
                "node": record.node, "attrs": dict(record.attrs),
            })
        return record

    # -- header propagation ------------------------------------------------

    @staticmethod
    def inject(headers: dict[str, Any], ctx: tuple[int, int]) -> dict[str, Any]:
        """Write a context into an envelope-header dict (returned back)."""
        headers[TRACE_ID_HEADER] = ctx[0]
        headers[SPAN_ID_HEADER] = ctx[1]
        return headers

    @staticmethod
    def extract(headers: dict[str, Any]) -> tuple[int, int] | None:
        """Read a context out of envelope headers, if one is present."""
        trace_id = headers.get(TRACE_ID_HEADER)
        if trace_id is None:
            return None
        return (trace_id, headers.get(SPAN_ID_HEADER, 0))

    # -- queries -----------------------------------------------------------

    def traces(self) -> list[int]:
        """All trace ids with at least one span, ascending."""
        return sorted({span.trace_id for span in self.spans})

    def spans_of(self, trace_id: int) -> list[Span]:
        """The spans of one trace in creation order."""
        return [span for span in self.spans if span.trace_id == trace_id]

    def events_of(self, trace_id: int) -> list[TraceEvent]:
        """The events attached to one trace in creation order."""
        return [ev for ev in self.events if ev.trace_id == trace_id]

    def clear(self) -> None:
        """Drop recorded data (id counters keep advancing)."""
        self.spans.clear()
        self.events.clear()

    # -- export ------------------------------------------------------------

    def export_jsonl(self) -> str:
        """All records as JSON Lines, creation-ordered, byte-stable."""
        records: list[tuple[int, dict[str, Any]]] = []
        for span in self.spans:
            records.append((span.seq, {
                "kind": "span",
                "trace": span.trace_id,
                "span": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "node": span.node,
                "start": span.start,
                "end": span.end,
                "status": span.status,
                "attrs": span.attrs,
            }))
        for ev in self.events:
            records.append((ev.seq, {
                "kind": "event",
                "trace": ev.trace_id,
                "span": ev.span_id,
                "name": ev.name,
                "node": ev.node,
                "time": ev.time,
                "attrs": ev.attrs,
            }))
        records.sort(key=lambda item: item[0])
        return "\n".join(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for _seq, record in records
        )

    def render(self, trace_id: int) -> str:
        """ASCII span tree of one trace, events inlined under their span."""
        spans = self.spans_of(trace_id)
        if not spans:
            return f"trace {trace_id}: (no spans)"
        by_id = {span.span_id: span for span in spans}
        children: dict[int | None, list[Span]] = {}
        for span in spans:
            parent = span.parent_id if span.parent_id in by_id else None
            children.setdefault(parent, []).append(span)
        events_by_span: dict[int | None, list[TraceEvent]] = {}
        for ev in self.events_of(trace_id):
            key = ev.span_id if ev.span_id in by_id else None
            events_by_span.setdefault(key, []).append(ev)

        t0 = min(span.start for span in spans)
        t_end = max((span.end for span in spans if span.end is not None),
                    default=t0)
        lines = [
            f"trace {trace_id} — {len(spans)} spans, "
            f"{len(self.events_of(trace_id))} events, {t_end - t0:.3f}s"
        ]

        def fmt_attrs(attrs: dict[str, Any]) -> str:
            if not attrs:
                return ""
            return " " + " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))

        def walk(span: Span, prefix: str, is_last: bool) -> None:
            connector = "└─" if is_last else "├─"
            dur = f"+{span.duration:.3f}s" if span.end is not None else "open"
            lines.append(
                f"{prefix}{connector} {span.name} [{span.node}] "
                f"@{span.start - t0:.3f}s {dur} status={span.status}"
                f"{fmt_attrs(span.attrs)}"
            )
            child_prefix = prefix + ("   " if is_last else "│  ")
            kids = sorted(children.get(span.span_id, []), key=lambda s: s.seq)
            marks = sorted(events_by_span.get(span.span_id, []), key=lambda e: e.seq)
            items: list[tuple[int, Any]] = [(s.seq, s) for s in kids]
            items += [(e.seq, e) for e in marks]
            items.sort(key=lambda pair: pair[0])
            for index, (_seq, item) in enumerate(items):
                last = index == len(items) - 1
                if isinstance(item, Span):
                    walk(item, child_prefix, last)
                else:
                    mark = "└─" if last else "├─"
                    lines.append(
                        f"{child_prefix}{mark} * {item.name} [{item.node}] "
                        f"@{item.time - t0:.3f}s{fmt_attrs(item.attrs)}"
                    )

        roots = sorted(children.get(None, []), key=lambda s: s.seq)
        for index, root in enumerate(roots):
            walk(root, "", index == len(roots) - 1)
        for ev in sorted(events_by_span.get(None, []), key=lambda e: e.seq):
            lines.append(f"* {ev.name} [{ev.node}] @{ev.time - t0:.3f}s"
                         f"{fmt_attrs(ev.attrs)}")
        return "\n".join(lines)
