"""Metrics facade: named counters, gauges, and fixed-bucket histograms.

The discovery fabric already accounts every byte in
:class:`~repro.netsim.stats.TrafficStats`, but those are aggregate scalar
counters — they cannot answer "what is the p95 end-to-end query latency"
or "how many descriptions does the matchmaker evaluate per query". This
module adds the missing distribution layer:

* :class:`Counter` / :class:`Gauge` — the trivial named instruments;
* :class:`Histogram` — fixed upper-bound buckets with percentile
  estimation by linear interpolation inside the covering bucket, the
  classic Prometheus-style scheme. Fixed buckets keep observation O(log
  buckets) and — crucially for this repo — fully deterministic: the same
  observation stream always yields the same summary;
* :class:`MetricsRegistry` — a name-keyed collection owned by the
  :class:`~repro.netsim.network.Network`, so every instrument recorded
  anywhere in a run is reachable from one place for experiment tables
  and the ``repro metrics`` CLI.

Nothing here reads the wall clock or the simulator; values are whatever
the instrumented code observes (sim-time latencies, counts, bytes).
"""

from __future__ import annotations

import bisect
import re
from collections import deque
from typing import Any, Iterable

from repro.errors import ReproError

#: Default histogram bounds for sim-time latencies (seconds). Geometric
#: 1-2.5-5 ladder from 1 ms to 60 s; one-way LAN latency is 1 ms and the
#: aggregation timeout tops out in tens of seconds, so real observations
#: land mid-ladder where interpolation is tight.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 60.0,
)

#: Bounds for small integer distributions (hop counts, fan-out widths).
HOP_BUCKETS: tuple[float, ...] = (0, 1, 2, 3, 4, 6, 8, 12, 16)

#: Bounds for per-query work counts (descriptions evaluated, responders).
COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the count."""
        if n < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease (n={n})")
        self.value += n


class Gauge:
    """A named value that can move both ways (e.g. live lease count).

    Callers that pass ``now`` (sim time) to :meth:`set`/:meth:`add` also
    feed a bounded transition history, which :meth:`mean_over` turns into
    a **time-weighted** average over a trailing window — the difference
    between "the queue is empty right now" and "the queue averaged depth
    12 over the last five seconds". Untimed sets keep the original
    snapshot-only behavior.
    """

    __slots__ = ("name", "value", "last_set", "_history")

    #: Transition history bound: at one set per simulated event this
    #: comfortably covers any watchdog window without unbounded growth.
    HISTORY = 4096

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        #: Sim time of the last *timed* set (None before the first one).
        self.last_set: float | None = None
        self._history: deque[tuple[float, float]] = deque(maxlen=self.HISTORY)

    def set(self, value: float, *, now: float | None = None) -> None:
        self.value = value
        if now is not None:
            self.last_set = now
            self._history.append((now, value))

    def add(self, delta: float, *, now: float | None = None) -> None:
        self.set(self.value + delta, now=now)

    def mean_over(self, window: float, *, now: float) -> float:
        """Time-weighted mean of the value over ``[now - window, now]``.

        Each recorded value is weighted by how long it was in effect;
        before the first timed set the gauge is taken as 0 (its initial
        value). With no timed history at all the current value is
        returned (the snapshot-only degenerate case).
        """
        if window <= 0:
            raise ReproError(f"gauge {self.name!r} window must be positive, got {window}")
        if not self._history:
            return self.value
        start = now - window
        current = 0.0
        integral = 0.0
        prev_t = start
        for t, value in self._history:
            if t <= start:
                current = value
                continue
            if t > now:
                break
            integral += (t - prev_t) * current
            prev_t = t
            current = value
        integral += (now - prev_t) * current
        return integral / window


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    ``buckets`` are inclusive upper bounds in increasing order; an
    implicit overflow bucket catches everything beyond the last bound.
    Percentiles are estimated by walking the cumulative counts to the
    covering bucket and interpolating linearly inside it, then clamped to
    the observed ``[vmin, vmax]`` so estimates never leave the data range.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "count", "total",
                 "vmin", "vmax")

    def __init__(self, name: str, *, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ReproError(
                f"histogram {name!r} needs strictly increasing bucket bounds, got {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        if index < len(self.bounds):
            self.counts[index] += 1
        else:
            self.overflow += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-quantile (``p`` in (0, 1]) from the buckets."""
        if not 0.0 < p <= 1.0:
            raise ReproError(f"percentile must be in (0, 1], got {p}")
        if self.count == 0:
            return 0.0
        rank = p * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            cumulative += bucket_count
            if cumulative >= rank:
                hi = self.bounds[index]
                lo = self.bounds[index - 1] if index > 0 else min(self.vmin, hi)
                fraction = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lo + (hi - lo) * fraction
                return max(self.vmin, min(estimate, self.vmax))
        # The rank lands in the overflow bucket: all we know is "beyond
        # the last bound", so report the observed maximum.
        return self.vmax

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """count/sum/min/max/mean plus the p50/p95/p99 estimates."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Fold an instrument name onto the Prometheus metric-name grammar."""
    sanitized = _PROM_INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


class MetricsRegistry:
    """Name-keyed counters, gauges, and histograms for one run.

    Accessors create the instrument on first use (with the given buckets
    for histograms) and return the existing one afterwards, so call sites
    never need to coordinate registration.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  *, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name, buckets=buckets)
        return instrument

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict dump of every instrument, names sorted."""
        return {
            "counters": {name: self.counters[name].value
                         for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name].value
                       for name in sorted(self.gauges)},
            "histograms": {name: self.histograms[name].summary()
                           for name in sorted(self.histograms)},
        }

    def render_prom(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every instrument.

        Counters and gauges become single samples; histograms become the
        standard cumulative ``_bucket{le=...}`` series plus ``_sum`` and
        ``_count``. Instrument names are sanitized to the Prometheus
        grammar (dots and other separators fold to ``_``). The output is
        sorted and format-stable so a future real-transport scrape
        endpoint (and the CLI test) can rely on the exact shape.
        """
        lines: list[str] = []
        for name in sorted(self.counters):
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {self.counters[name].value}")
        for name in sorted(self.gauges):
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {self.gauges[name].value:g}")
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(histogram.bounds, histogram.counts):
                cumulative += count
                lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
            lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{metric}_sum {histogram.total:g}")
            lines.append(f"{metric}_count {histogram.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self) -> str:
        """Aligned plain-text tables (the ``repro metrics`` output)."""
        lines: list[str] = []
        if self.counters:
            width = max(len(name) for name in self.counters)
            lines.append("counters:")
            lines.extend(
                f"  {name.ljust(width)}  {self.counters[name].value}"
                for name in sorted(self.counters)
            )
        if self.gauges:
            width = max(len(name) for name in self.gauges)
            lines.append("gauges:")
            lines.extend(
                f"  {name.ljust(width)}  {self.gauges[name].value:g}"
                for name in sorted(self.gauges)
            )
        if self.histograms:
            lines.append("histograms:")
            header = ["name", "count", "mean", "p50", "p95", "p99", "max"]
            rows = [header]
            for name in sorted(self.histograms):
                s = self.histograms[name].summary()
                rows.append([
                    name, str(s["count"]),
                    *(f"{s[key]:.6g}" for key in ("mean", "p50", "p95", "p99", "max")),
                ])
            widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
            for row in rows:
                lines.append("  " + "  ".join(cell.ljust(widths[i])
                                              for i, cell in enumerate(row)))
        return "\n".join(lines) if lines else "(no metrics recorded)"
