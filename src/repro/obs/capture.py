"""Canonical traced scenario runs backing ``repro trace``/``repro metrics``.

:func:`run_traced` builds a small, deterministic deployment shaped after
an experiment family, plays a short anchored query workload through it,
and returns the run's trace recorder and metrics registry. Two calls
with the same ``(experiment, seed)`` produce byte-identical
:meth:`~repro.obs.tracing.TraceRecorder.export_jsonl` output — the
determinism contract ``make obs-smoke`` enforces.

This module imports the full system stack, which is why it is *not*
re-exported from :mod:`repro.obs` (see that package's docstring).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.admission import AdmissionPolicy
from repro.core.client_node import DiscoveryCall
from repro.core.config import DiscoveryConfig
from repro.core.routing import ROUTING_LEAST_LOADED, RoutingConfig
from repro.core.system import DiscoverySystem
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import TraceRecorder
from repro.semantics.generator import battlefield_ontology
from repro.workloads.queries import QueryDriver, QueryWorkload
from repro.workloads.scenarios import ScenarioSpec, build_scenario

#: Experiment families whose canonical capture is a federated multi-LAN
#: (WAN) deployment; everything else is captured on a single LAN.
MULTI_LAN_EXPERIMENTS = frozenset(
    {"e2", "e6", "e7", "e8", "e9", "e10", "e11", "e13", "e14", "e15", "e16"}
)


@dataclass
class TracedRun:
    """One finished capture: the system plus its observability artifacts."""

    experiment: str
    system: DiscoverySystem
    recorder: TraceRecorder
    metrics: MetricsRegistry
    calls: list[DiscoveryCall]
    #: Trace id of the first completed discovery call — the default trace
    #: the CLI renders (None when nothing completed).
    sample_trace: int | None


def run_traced(experiment: str = "e7", seed: int = 0) -> TracedRun:
    """Run the canonical traced capture for ``experiment``.

    The deployment is intentionally small (a few LANs, a handful of
    services, four queries) — the point is a readable trace and a
    representative metrics block, not experiment-scale numbers.
    """
    lans = 3 if experiment in MULTI_LAN_EXPERIMENTS else 1
    config = None
    interval = 0.5
    if experiment == "e17":
        # The overload capture: a deliberately tiny admission queue so a
        # four-query burst saturates the registry — the trace then shows
        # admission.shed events and query.busy retries, and the metrics
        # block carries the admission.* counters and the
        # registry.queue_depth gauge.
        config = DiscoveryConfig(
            admission=AdmissionPolicy(query_cost=0.4, queue_limit=1,
                                      degrade_at=1.0, retry_after_base=0.1),
        )
        interval = 0.05
    if experiment == "e20":
        # The health capture: the e17 tiny-queue saturation with the
        # runtime health layer enabled and its thresholds tightened so
        # the four-query burst trips the shed watchdog — the trace then
        # shows health.alarm events and the metrics block carries the
        # health.alarms / health.dumps counters.
        from repro.obs.health import HealthConfig

        config = DiscoveryConfig(
            admission=AdmissionPolicy(query_cost=0.4, queue_limit=1,
                                      degrade_at=1.0, retry_after_base=0.1),
            health=HealthConfig(enabled=True, shed_step_threshold=2,
                                queue_depth_threshold=1.0),
        )
        interval = 0.05
    registries_per_lan = 1
    if experiment == "e19":
        # The recovery capture: durability on, with the registry crashed
        # and restarted mid-capture — the trace then shows the
        # registry.recover span and the metrics block carries the
        # durability.wal_appends / durability.replayed counters.
        from repro.core.durability import DurabilityConfig

        config = DiscoveryConfig(durability=DurabilityConfig(enabled=True))
    if experiment == "e18":
        # The routing capture: the e17 tiny-queue saturation plus a
        # sibling registry and the least-loaded strategy, so the trace
        # shows queries rerouting off the saturated registry and the
        # metrics block carries the routing.rtt histogram and the
        # routing.reroutes / routing.busy_observed counters.
        config = DiscoveryConfig(
            admission=AdmissionPolicy(query_cost=0.4, queue_limit=1,
                                      degrade_at=1.0, retry_after_base=0.1),
            routing=RoutingConfig(strategy=ROUTING_LEAST_LOADED),
        )
        interval = 0.05
        registries_per_lan = 2
    spec = ScenarioSpec(
        name=f"capture-{experiment}",
        lan_names=tuple(f"lan-{chr(ord('a') + i)}" for i in range(lans)),
        ontology_factory=battlefield_ontology,
        registries_per_lan=registries_per_lan,
        services_per_lan=2,
        clients_per_lan=1,
        federation="ring" if lans > 1 else "none",
        seed=seed,
    )
    built = build_scenario(spec, config=config)
    system = built.system
    # Let bootstrap finish (probes, publishes, first federation round)
    # before the workload starts, so traces show steady-state behavior.
    system.run(until=12.0)
    if experiment == "e19":
        # Crash and restart the registry after bootstrap so the workload
        # below queries the *replayed* store.
        registry = system.registries[0]
        system.sim.schedule_at(system.sim.now + 0.5, registry.crash)
        system.sim.schedule_at(system.sim.now + 1.0, registry.restart)
        system.run_for(1.5)
    workload = QueryWorkload.anchored(built.generator, built.profiles, 4, generalize=1)
    driver = QueryDriver(system, workload, model_id="semantic",
                         interval=interval, seed=seed)
    issued = driver.play(settle=0.0, drain=10.0)
    calls = [q.call for q in issued]
    sample = next(
        (c.trace_id for c in calls if c.completed and c.trace_id is not None), None
    )
    return TracedRun(
        experiment=experiment,
        system=system,
        recorder=system.trace,
        metrics=system.metrics,
        calls=calls,
        sample_trace=sample,
    )
