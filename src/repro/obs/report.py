"""Capacity-planning reports: how much headroom does a deployment have?

ROADMAP item 5 asks every scenario to answer the operator's question —
"what is the maximum sustainable load before my objectives break, and
what does breaking look like" — not just to print raw tables.
:func:`build_capacity_report` post-processes an experiment's swept rows
(offered load vs outcome) plus whatever runtime state is available (the
metrics registry's latency histograms, a
:class:`~repro.obs.health.HealthMonitor`'s SLO windows and alarm
timeline) into one structured, JSON-serializable report:

* ``max_sustainable_qps`` — the highest offered load whose row still
  met the success-rate and latency objectives (0.0 when none did);
* ``points`` — the sweep, each point annotated with whether it held;
* ``latency`` — whole-run p50/p95/p99 from ``query.e2e_latency``;
* ``shed_rate``, ``alarms``, ``slo`` — the overload/health posture.

Reports are deterministic: same seed, same rows, same bytes. The
experiments (E17/E18/E19/E20) attach one via their ``report_dir``
parameter and the ``repro health`` CLI renders and writes them to
``benchmarks/results/``.
"""

from __future__ import annotations

import json
import pathlib
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.health import HealthMonitor
    from repro.obs.metrics import MetricsRegistry

#: Report schema version (bump on breaking shape changes).
SCHEMA_VERSION = 1


def build_capacity_report(
    experiment: str,
    *,
    seed: int,
    points: Iterable[Mapping[str, Any]],
    success_target: float = 0.95,
    latency_target: float = 2.0,
    metrics: "MetricsRegistry | None" = None,
    monitor: "HealthMonitor | None" = None,
    shed: int | None = None,
    issued: int | None = None,
    notes: tuple[str, ...] = (),
) -> dict[str, Any]:
    """Assemble one capacity report.

    ``points`` are mappings with at least ``qps`` (offered load),
    ``success`` (success ratio in [0, 1]), and ``latency`` (the point's
    tail-latency figure, seconds); extra keys ride along untouched. A
    point *holds* when success >= ``success_target`` and latency <=
    ``latency_target``; ``max_sustainable_qps`` is the highest holding
    offered load.
    """
    annotated = []
    for point in points:
        entry = dict(point)
        entry["slo_ok"] = (
            float(entry["success"]) >= success_target
            and float(entry["latency"]) <= latency_target
        )
        annotated.append(entry)
    annotated.sort(key=lambda p: float(p["qps"]))
    sustainable = [p for p in annotated if p["slo_ok"]]
    report: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "experiment": experiment,
        "seed": seed,
        "objective": {
            "success_target": success_target,
            "latency_target": latency_target,
        },
        "points": annotated,
        "max_sustainable_qps": (
            max(float(p["qps"]) for p in sustainable) if sustainable else 0.0
        ),
    }
    if metrics is not None:
        histogram = metrics.histograms.get("query.e2e_latency")
        if histogram is not None and histogram.count:
            report["latency"] = {
                "count": histogram.count,
                "p50": histogram.percentile(0.50),
                "p95": histogram.percentile(0.95),
                "p99": histogram.percentile(0.99),
            }
    if shed is not None and issued:
        report["shed_rate"] = shed / issued
    elif shed is not None:
        report["shed"] = shed
    if monitor is not None:
        report["alarms"] = monitor.alarm_timeline()
        report["slo"] = monitor.slo.snapshot() if monitor.slo else {}
    if notes:
        report["notes"] = list(notes)
    return report


def render_report(report: Mapping[str, Any]) -> str:
    """A compact human rendering of one capacity report."""
    lines = [
        f"capacity report — {report['experiment']} (seed {report['seed']})",
        f"  max sustainable qps: {report['max_sustainable_qps']:g} "
        f"(success >= {report['objective']['success_target']:g}, "
        f"latency <= {report['objective']['latency_target']:g}s)",
    ]
    latency = report.get("latency")
    if latency:
        lines.append(
            f"  query latency: p50={latency['p50']:.4g}s "
            f"p95={latency['p95']:.4g}s p99={latency['p99']:.4g}s "
            f"({latency['count']} queries)"
        )
    if "shed_rate" in report:
        lines.append(f"  shed rate: {report['shed_rate']:.3f}")
    lines.append("  sweep:")
    for point in report["points"]:
        verdict = "ok " if point["slo_ok"] else "FAIL"
        lines.append(
            f"    [{verdict}] qps={float(point['qps']):8.2f}  "
            f"success={float(point['success']):.3f}  "
            f"latency={float(point['latency']):.4g}s"
        )
    alarms = report.get("alarms")
    if alarms is not None:
        lines.append(f"  alarms: {len(alarms)}")
        for alarm in alarms:
            where = f" [{alarm['node']}]" if alarm.get("node") else ""
            lines.append(f"    t={alarm['t']:g} {alarm['alarm']}{where}")
    return "\n".join(lines)


def write_report(report: Mapping[str, Any], directory: str | pathlib.Path) -> pathlib.Path:
    """Write a report as canonical JSON; returns the path written."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (
        f"health_{str(report['experiment']).lower()}_seed{report['seed']}.json"
    )
    path.write_text(
        json.dumps(report, sort_keys=True, indent=2, default=str) + "\n"
    )
    return path
