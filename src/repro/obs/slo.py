"""Windowed SLO tracking with multi-window burn-rate alerting.

Cumulative metrics (:mod:`repro.obs.metrics`) answer "how did the whole
run go"; an operator of a *dynamic* deployment needs "are we inside our
objectives **right now**". :class:`SLOTracker` keeps rolling sim-time
windows of per-request-class outcomes — success/failure counts and a
fixed-bucket latency distribution per one-second bucket — and evaluates
:class:`SLOObjective` targets over two windows at once:

* a **fast** window (default 5 s of sim time) that reacts quickly, and
* a **slow** window (default 60 s) that suppresses blips,

the classic multi-window burn-rate scheme: an objective *breaches* only
when the error budget is burning faster than the configured threshold in
*both* windows, so a single lost query never pages but a sustained
failure mode does within seconds.

Determinism: buckets are keyed by ``floor(now / bucket)`` of the injected
sim-time clock and hold plain integer counts; two same-seed runs observe
the same outcome stream at the same times and therefore produce identical
windows, burn rates, and breach edges. The wall clock is never read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS

#: The request classes the discovery fabric tracks objectives for.
CLASS_QUERY = "query"
CLASS_RENEW = "renew"
CLASS_PUBLISH = "publish"

REQUEST_CLASSES = (CLASS_QUERY, CLASS_RENEW, CLASS_PUBLISH)


@dataclass(frozen=True)
class SLOObjective:
    """One request class's service-level objective.

    ``success_target`` is the windowed success-rate floor (e.g. 0.95 =
    at most 5% error budget); ``latency_target`` bounds the windowed
    ``latency_percentile`` estimate (seconds of sim time).
    """

    request_class: str
    success_target: float = 0.95
    latency_target: float = 2.0
    latency_percentile: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.success_target < 1.0:
            raise ReproError(
                f"success_target must be in (0, 1), got {self.success_target}"
            )
        if self.latency_target <= 0:
            raise ReproError(
                f"latency_target must be positive, got {self.latency_target}"
            )
        if not 0.0 < self.latency_percentile <= 1.0:
            raise ReproError(
                f"latency_percentile must be in (0, 1], got {self.latency_percentile}"
            )


class _Bucket:
    """Outcomes observed inside one sim-time bucket."""

    __slots__ = ("index", "ok", "err", "lat_counts", "lat_overflow",
                 "lat_total", "lat_n", "vmin", "vmax")

    def __init__(self, index: int) -> None:
        self.index = index
        self.ok = 0
        self.err = 0
        self.lat_counts = [0] * len(DEFAULT_LATENCY_BUCKETS)
        self.lat_overflow = 0
        self.lat_total = 0.0
        self.lat_n = 0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def record(self, ok: bool, latency: float) -> None:
        if ok:
            self.ok += 1
        else:
            self.err += 1
        latency = float(latency)
        self.lat_n += 1
        self.lat_total += latency
        if latency < self.vmin:
            self.vmin = latency
        if latency > self.vmax:
            self.vmax = latency
        for i, bound in enumerate(DEFAULT_LATENCY_BUCKETS):
            if latency <= bound:
                self.lat_counts[i] += 1
                return
        self.lat_overflow += 1


class _ClassWindow:
    """The rolling bucket ring for one request class."""

    def __init__(self, bucket_width: float, retain: float) -> None:
        self._width = bucket_width
        #: Number of whole buckets retained (covers the slow window).
        self._keep = max(1, int(retain / bucket_width) + 1)
        self._buckets: dict[int, _Bucket] = {}
        self.total_ok = 0
        self.total_err = 0

    def _bucket(self, now: float) -> _Bucket:
        index = int(now // self._width)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = _Bucket(index)
            self.roll(now)
        return bucket

    def roll(self, now: float) -> None:
        """Evict buckets that have fallen out of the retained horizon."""
        floor = int(now // self._width) - self._keep
        if len(self._buckets) > self._keep:
            for index in [i for i in self._buckets if i < floor]:
                del self._buckets[index]

    def record(self, now: float, ok: bool, latency: float) -> None:
        self._bucket(now).record(ok, latency)
        if ok:
            self.total_ok += 1
        else:
            self.total_err += 1

    def _covering(self, window: float, now: float) -> list[_Bucket]:
        first = int((now - window) // self._width) + 1
        last = int(now // self._width)
        return [self._buckets[i] for i in range(first, last + 1)
                if i in self._buckets]

    def counts(self, window: float, now: float) -> tuple[int, int]:
        """``(ok, err)`` totals inside the trailing ``window`` seconds."""
        ok = err = 0
        for bucket in self._covering(window, now):
            ok += bucket.ok
            err += bucket.err
        return ok, err

    def percentile(self, window: float, now: float, p: float) -> float:
        """Interpolated latency quantile over the trailing window."""
        covering = self._covering(window, now)
        count = sum(b.lat_n for b in covering)
        if count == 0:
            return 0.0
        vmin = min(b.vmin for b in covering if b.lat_n)
        vmax = max(b.vmax for b in covering if b.lat_n)
        rank = p * count
        cumulative = 0
        for i, bound in enumerate(DEFAULT_LATENCY_BUCKETS):
            in_bucket = sum(b.lat_counts[i] for b in covering)
            if in_bucket == 0:
                continue
            cumulative += in_bucket
            if cumulative >= rank:
                lo = DEFAULT_LATENCY_BUCKETS[i - 1] if i > 0 else min(vmin, bound)
                fraction = (rank - (cumulative - in_bucket)) / in_bucket
                estimate = lo + (bound - lo) * fraction
                return max(vmin, min(estimate, vmax))
        return vmax


@dataclass(frozen=True)
class SLOStatus:
    """One objective's evaluation at a point in sim time."""

    objective: SLOObjective
    time: float
    fast_burn: float
    slow_burn: float
    fast_samples: int
    slow_samples: int
    latency: float
    #: Error budget burning too fast in BOTH windows.
    burn_breached: bool
    #: Windowed latency percentile above target.
    latency_breached: bool

    @property
    def breached(self) -> bool:
        return self.burn_breached or self.latency_breached


class SLOTracker:
    """Rolling-window objective evaluation for the three request classes."""

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        objectives: tuple[SLOObjective, ...],
        bucket: float = 1.0,
        fast_window: float = 5.0,
        slow_window: float = 60.0,
        burn_threshold: float = 2.0,
        min_samples: int = 5,
    ) -> None:
        if bucket <= 0 or fast_window <= 0 or slow_window < fast_window:
            raise ReproError(
                f"SLO windows must satisfy 0 < bucket, 0 < fast <= slow "
                f"(got bucket={bucket}, fast={fast_window}, slow={slow_window})"
            )
        self.clock = clock
        self.objectives = {obj.request_class: obj for obj in objectives}
        self.bucket = bucket
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.burn_threshold = burn_threshold
        self.min_samples = min_samples
        self._windows = {
            cls: _ClassWindow(bucket, slow_window) for cls in self.objectives
        }

    # -- feeding -----------------------------------------------------------

    def record(self, request_class: str, *, ok: bool, latency: float = 0.0) -> None:
        """One finished request of ``request_class`` (from a span closure)."""
        window = self._windows.get(request_class)
        if window is not None:
            window.record(self.clock(), ok, latency)

    def advance(self, now: float) -> None:
        """Roll every ring forward (cheap; safe to call often)."""
        for window in self._windows.values():
            window.roll(now)

    # -- evaluation --------------------------------------------------------

    def burn_rate(self, request_class: str, window: float) -> float:
        """Error-budget burn over the trailing ``window`` (1.0 = on budget)."""
        objective = self.objectives[request_class]
        ok, err = self._windows[request_class].counts(window, self.clock())
        total = ok + err
        if total == 0:
            return 0.0
        budget = 1.0 - objective.success_target
        return (err / total) / budget

    def success_rate(self, request_class: str, window: float) -> float:
        """Windowed success rate; 1.0 when no samples landed."""
        ok, err = self._windows[request_class].counts(window, self.clock())
        total = ok + err
        return ok / total if total else 1.0

    def latency(self, request_class: str, window: float) -> float:
        """Windowed latency at the objective's percentile."""
        objective = self.objectives[request_class]
        return self._windows[request_class].percentile(
            window, self.clock(), objective.latency_percentile
        )

    def check(self) -> list[SLOStatus]:
        """Evaluate every objective now; sorted by request class."""
        now = self.clock()
        statuses = []
        for cls in sorted(self.objectives):
            objective = self.objectives[cls]
            ring = self._windows[cls]
            fast_ok, fast_err = ring.counts(self.fast_window, now)
            slow_ok, slow_err = ring.counts(self.slow_window, now)
            budget = 1.0 - objective.success_target
            fast_n, slow_n = fast_ok + fast_err, slow_ok + slow_err
            fast_burn = (fast_err / fast_n) / budget if fast_n else 0.0
            slow_burn = (slow_err / slow_n) / budget if slow_n else 0.0
            latency = ring.percentile(
                self.fast_window, now, objective.latency_percentile
            )
            enough = fast_n >= self.min_samples
            statuses.append(SLOStatus(
                objective=objective,
                time=now,
                fast_burn=fast_burn,
                slow_burn=slow_burn,
                fast_samples=fast_n,
                slow_samples=slow_n,
                latency=latency,
                burn_breached=(
                    enough
                    and fast_burn >= self.burn_threshold
                    and slow_burn >= self.burn_threshold
                ),
                latency_breached=enough and latency > objective.latency_target,
            ))
        return statuses

    def snapshot(self) -> dict:
        """Whole-run totals plus the current windowed view (for reports)."""
        now = self.clock()
        out: dict = {}
        for cls in sorted(self.objectives):
            objective = self.objectives[cls]
            ring = self._windows[cls]
            total = ring.total_ok + ring.total_err
            out[cls] = {
                "ok": ring.total_ok,
                "err": ring.total_err,
                "success_rate": ring.total_ok / total if total else 1.0,
                "success_target": objective.success_target,
                "latency_target": objective.latency_target,
                "window_success": self.success_rate(cls, self.slow_window),
                "window_latency": ring.percentile(
                    self.slow_window, now, objective.latency_percentile
                ),
            }
        return out
