"""Observability: deterministic tracing, metrics, and runtime health.

Only the dependency-free pillars are exported here. The canonical traced
scenarios live in :mod:`repro.obs.capture` and must be imported from
there explicitly — pulling them in at package level would close an import
cycle (``netsim.simulator`` → ``repro.obs`` → ``core.system`` →
``netsim``). The same rule keeps :mod:`repro.obs.report` (which the
experiments import directly) out of the package namespace.
"""

from repro.obs.health import (
    DEFAULT_OBJECTIVES,
    FlightRecorder,
    HealthConfig,
    HealthDump,
    HealthMonitor,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    HOP_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.slo import (
    CLASS_PUBLISH,
    CLASS_QUERY,
    CLASS_RENEW,
    SLOObjective,
    SLOStatus,
    SLOTracker,
)
from repro.obs.tracing import (
    SPAN_ID_HEADER,
    TRACE_ID_HEADER,
    Span,
    TraceEvent,
    TraceRecorder,
)
from repro.obs.watchdog import Alarm, Watchdog

__all__ = [
    "Alarm",
    "CLASS_PUBLISH",
    "CLASS_QUERY",
    "CLASS_RENEW",
    "COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_OBJECTIVES",
    "HOP_BUCKETS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "HealthConfig",
    "HealthDump",
    "HealthMonitor",
    "Histogram",
    "MetricsRegistry",
    "SLOObjective",
    "SLOStatus",
    "SLOTracker",
    "SPAN_ID_HEADER",
    "TRACE_ID_HEADER",
    "Span",
    "TraceEvent",
    "TraceRecorder",
    "Watchdog",
]
