"""Observability: deterministic tracing and a metrics facade.

Only the dependency-free pillars are exported here. The canonical traced
scenarios live in :mod:`repro.obs.capture` and must be imported from
there explicitly — pulling them in at package level would close an import
cycle (``netsim.simulator`` → ``repro.obs`` → ``core.system`` →
``netsim``).
"""

from repro.obs.metrics import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    HOP_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import (
    SPAN_ID_HEADER,
    TRACE_ID_HEADER,
    Span,
    TraceEvent,
    TraceRecorder,
)

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "HOP_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SPAN_ID_HEADER",
    "TRACE_ID_HEADER",
    "Span",
    "TraceEvent",
    "TraceRecorder",
]
