"""Runtime health: flight recorders, SLO windows, watchdog alarms.

The observability built in earlier PRs is *post-hoc*: whole-run traces
and cumulative metrics answer "what happened" after the fact. A dynamic
deployment — the paper's whole premise — also needs "is the system
healthy right now, and how much headroom is left". This module is that
runtime layer:

* :class:`FlightRecorder` — a bounded per-node ring of recent spans,
  events, and state transitions. Cheap enough to leave on, dumpable on
  demand and dumped automatically on crash, invariant violation, or
  watchdog alarm: the forensic "last N records before the incident"
  without whole-run trace cost.
* :class:`HealthMonitor` — owns the per-node recorders, a windowed
  :class:`~repro.obs.slo.SLOTracker`, and the
  :mod:`~repro.obs.watchdog` detectors; evaluated on a periodic
  sim-time tick when enabled.

**Inert by default.** Like admission control, routing, and durability,
the default :class:`HealthConfig` has ``enabled=False``: no periodic
tick is scheduled, no instrument is created, no trace observer is
registered, and no record differs by a byte from a pre-health run —
the obs/routing/recovery smoke byte-identity gates hold unchanged.

Determinism: the monitor reads only the injected sim-time clock, the
metrics registry, and feeds pushed by protocol agents; the tick never
touches the simulator RNG. Same-seed runs therefore produce identical
alarm streams and byte-identical flight-recorder dumps.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ReproError
from repro.obs.slo import (
    CLASS_PUBLISH,
    CLASS_QUERY,
    CLASS_RENEW,
    SLOObjective,
    SLOStatus,
    SLOTracker,
)
from repro.obs.watchdog import (
    Alarm,
    AntiEntropyStaleness,
    BreakerFlapping,
    LeaseExpirySpike,
    QueueDepthGrowth,
    ShedRateStep,
    Watchdog,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.simulator import Simulator
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import TraceRecorder

#: Default objectives: queries may fail 5% and must answer within 2 s at
#: p95; renews are the soft-state lifeline and get a tighter target.
DEFAULT_OBJECTIVES: tuple[SLOObjective, ...] = (
    SLOObjective(CLASS_QUERY, success_target=0.95, latency_target=2.0),
    SLOObjective(CLASS_RENEW, success_target=0.99, latency_target=1.5),
    SLOObjective(CLASS_PUBLISH, success_target=0.95, latency_target=2.0),
)


@dataclass(frozen=True)
class HealthConfig:
    """Tunables of the runtime health layer (inert when ``enabled=False``)."""

    #: Master switch. Off = byte-identical to a pre-health deployment.
    enabled: bool = False

    # -- flight recorder ---------------------------------------------------
    #: Records retained per node ring (oldest evicted beyond this).
    recorder_capacity: int = 256
    #: Automatic dumps retained per run (oldest dropped beyond this).
    max_dumps: int = 32

    # -- SLO windows -------------------------------------------------------
    #: Sim-seconds per SLO bucket.
    slo_bucket: float = 1.0
    #: Fast burn-rate window (reacts quickly).
    fast_window: float = 5.0
    #: Slow burn-rate window (suppresses blips).
    slow_window: float = 60.0
    #: Error-budget burn multiple that breaches (in BOTH windows).
    burn_threshold: float = 2.0
    #: Minimum fast-window samples before an objective may breach.
    min_samples: int = 5
    #: Per-request-class objectives.
    objectives: tuple[SLOObjective, ...] = DEFAULT_OBJECTIVES

    # -- watchdogs ---------------------------------------------------------
    #: Seconds between watchdog/SLO evaluation ticks.
    watchdog_interval: float = 1.0
    #: Queue-depth growth: time-weighted mean window and depth threshold.
    queue_window: float = 5.0
    queue_depth_threshold: float = 8.0
    #: Breaker flapping: open→half-open→open cycles within the window.
    flap_window: float = 30.0
    breaker_flap_threshold: int = 2
    #: Anti-entropy staleness: silence bound for a registry's rounds.
    antientropy_stale_after: float = 30.0
    #: Lease-expiry spike: expiries within the window.
    lease_window: float = 10.0
    lease_expiry_spike: int = 3
    #: Shed-rate step: sheds within the window.
    shed_window: float = 5.0
    shed_step_threshold: int = 10

    def __post_init__(self) -> None:
        if self.recorder_capacity < 1:
            raise ReproError(
                f"recorder_capacity must be >= 1, got {self.recorder_capacity}"
            )
        if self.watchdog_interval <= 0:
            raise ReproError(
                f"watchdog_interval must be positive, got {self.watchdog_interval}"
            )
        if not self.objectives:
            raise ReproError("health needs at least one SLO objective")
        for window in (self.queue_window, self.flap_window, self.lease_window,
                       self.shed_window, self.antientropy_stale_after):
            if window <= 0:
                raise ReproError(f"watchdog windows must be positive, got {window}")


class FlightRecorder:
    """Bounded ring of one node's recent observability records.

    Records are the plain dicts the trace observer (and the monitor's
    explicit marks) produce; the ring keeps the most recent
    ``capacity`` of them, evicting oldest-first. :meth:`dump_jsonl`
    renders the ring with sorted keys and canonical separators, so the
    bytes are a pure function of the run — the determinism contract the
    health smoke asserts.
    """

    __slots__ = ("node_id", "records", "appended")

    def __init__(self, node_id: str, capacity: int) -> None:
        self.node_id = node_id
        self.records: deque[dict[str, Any]] = deque(maxlen=capacity)
        #: Total records ever offered (``appended - len(records)`` were evicted).
        self.appended = 0

    @property
    def evicted(self) -> int:
        return self.appended - len(self.records)

    def note(self, record: dict[str, Any]) -> None:
        self.appended += 1
        self.records.append(record)

    def dump_jsonl(self) -> str:
        """The ring as byte-stable JSON Lines (oldest first)."""
        return "\n".join(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in self.records
        )


@dataclass
class HealthDump:
    """One captured flight-recorder dump (crash, alarm, or on demand)."""

    reason: str
    node: str
    time: float
    jsonl: str
    #: Records inside the dump (for quick assertions).
    records: int = 0


class HealthMonitor:
    """The per-run health brain: recorders + SLO windows + watchdogs.

    Owned by the :class:`~repro.netsim.network.Network` next to the
    metrics registry, so every protocol agent reaches it the same way
    it reaches metrics. Construction is cheap and inert; the monitor
    only becomes live when :meth:`configure` receives an enabled
    :class:`HealthConfig` and :meth:`attach` arms the periodic tick.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        metrics: "MetricsRegistry",
        trace: "TraceRecorder | None" = None,
        config: HealthConfig | None = None,
    ) -> None:
        self.clock = clock
        self.metrics = metrics
        self.trace = trace
        self.config = config or HealthConfig()
        self.recorders: dict[str, FlightRecorder] = {}
        self.alarms: list[Alarm] = []
        self.dumps: list[HealthDump] = []
        self.slo: SLOTracker | None = None
        self.watchdogs: list[Watchdog] = []
        self._liveness: dict[str, dict[str, float]] = {}
        self._lease_events: deque[tuple[float, str, str]] = deque(maxlen=4096)
        self._slo_breached: set[str] = set()
        self._attached = False
        if self.config.enabled:
            self._build()

    # -- lifecycle ---------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether the health layer is live for this run."""
        return self.config.enabled

    def configure(self, config: HealthConfig) -> None:
        """Adopt a deployment's health config (resets tracker state)."""
        self.config = config
        if config.enabled:
            self._build()

    def _build(self) -> None:
        cfg = self.config
        self.slo = SLOTracker(
            self.clock,
            objectives=cfg.objectives,
            bucket=cfg.slo_bucket,
            fast_window=cfg.fast_window,
            slow_window=cfg.slow_window,
            burn_threshold=cfg.burn_threshold,
            min_samples=cfg.min_samples,
        )
        self.watchdogs = [
            QueueDepthGrowth(window=cfg.queue_window,
                             threshold=cfg.queue_depth_threshold),
            BreakerFlapping(window=cfg.flap_window,
                            threshold=cfg.breaker_flap_threshold),
            AntiEntropyStaleness(stale_after=cfg.antientropy_stale_after),
            LeaseExpirySpike(window=cfg.lease_window,
                             threshold=cfg.lease_expiry_spike),
            ShedRateStep(window=cfg.shed_window,
                         threshold=cfg.shed_step_threshold),
        ]

    def attach(self, sim: "Simulator") -> None:
        """Arm the periodic tick and the trace observer (enabled runs only).

        This is the one hook the simulator side provides: nothing is
        scheduled — and the trace recorder gains no observer — unless the
        deployment opted in, so default runs stay byte-identical.
        """
        if not self.active or self._attached:
            return
        self._attached = True
        self.trace = sim.trace
        sim.trace.observers.append(self._on_trace_record)
        sim.every(self.config.watchdog_interval, self.tick)

    # -- feeds -------------------------------------------------------------

    def _on_trace_record(self, record: dict[str, Any]) -> None:
        """Trace observer: mirror every span/event into its node's ring."""
        node = record.get("node") or ""
        self.recorder_for(node).note(record)

    def recorder_for(self, node_id: str) -> FlightRecorder:
        recorder = self.recorders.get(node_id)
        if recorder is None:
            recorder = self.recorders[node_id] = FlightRecorder(
                node_id, self.config.recorder_capacity
            )
        return recorder

    def note(self, node: str, name: str, **attrs: Any) -> None:
        """Record an explicit state transition into a node's ring."""
        if not self.active:
            return
        self.recorder_for(node).note({
            "t": self.clock(), "kind": "mark", "name": name,
            "node": node, "attrs": attrs,
        })

    def record_request(self, request_class: str, *, ok: bool,
                       latency: float = 0.0) -> None:
        """SLO feed: one finished QUERY/RENEW/PUBLISH request."""
        if self.slo is not None:
            self.slo.record(request_class, ok=ok, latency=latency)

    def feed_liveness(self, name: str, node: str) -> None:
        """Heartbeat feed: ``node`` performed periodic activity ``name``."""
        self._liveness.setdefault(name, {})[node] = self.clock()

    def feed_lease(self, kind: str, node: str) -> None:
        """Lease lifecycle feed from a registry's lease manager."""
        self._lease_events.append((self.clock(), kind, node))

    def liveness(self, name: str) -> dict[str, float]:
        """Last-seen time per node for heartbeat ``name``."""
        return self._liveness.get(name, {})

    def lease_events(self, kind: str, *, since: float) -> list[tuple[float, str]]:
        """``(time, node)`` lease events of ``kind`` since ``since``."""
        return [(t, node) for t, k, node in self._lease_events
                if k == kind and t >= since]

    def advance(self, now: float) -> None:
        """Network hook: roll SLO windows between ticks (cheap)."""
        if self.slo is not None:
            self.slo.advance(now)

    # -- lifecycle events --------------------------------------------------

    def on_node_crash(self, node_id: str) -> None:
        """A node failed-stop: mark it and capture its flight recorder."""
        if not self.active:
            return
        self.note(node_id, "node.crash")
        self.capture_dump("crash", node=node_id)

    def on_node_restart(self, node_id: str) -> None:
        if not self.active:
            return
        self.note(node_id, "node.restart")

    def on_invariant_violation(self, summary: str) -> None:
        """An invariant sweep failed: dump everything we have."""
        if not self.active:
            return
        self.metrics.counter("health.invariant_violations").inc()
        self.capture_dump("invariant-violation", detail=summary)

    # -- the tick ----------------------------------------------------------

    def tick(self) -> None:
        """Evaluate watchdogs and SLO burn rates (periodic, sim-time)."""
        if not self.active:
            return
        now = self.clock()
        if self.slo is not None:
            self.slo.advance(now)
        raised: list[Alarm] = []
        for watchdog in self.watchdogs:
            raised.extend(watchdog.check(self, now))
        raised.extend(self._check_slo(now))
        for alarm in raised:
            self._raise(alarm)

    def _check_slo(self, now: float) -> list[Alarm]:
        if self.slo is None:
            return []
        alarms = []
        for status in self.slo.check():
            cls = status.objective.request_class
            if status.breached:
                if cls not in self._slo_breached:
                    self._slo_breached.add(cls)
                    kind = "burn" if status.burn_breached else "latency"
                    alarms.append(Alarm(f"slo-{kind}", "", now, {
                        "class": cls,
                        "fast_burn": round(status.fast_burn, 3),
                        "slow_burn": round(status.slow_burn, 3),
                        "latency": round(status.latency, 4),
                    }))
            else:
                self._slo_breached.discard(cls)
        return alarms

    def _raise(self, alarm: Alarm) -> None:
        self.alarms.append(alarm)
        self.metrics.counter("health.alarms").inc()
        self.metrics.counter(f"health.alarm.{alarm.name}").inc()
        if self.trace is not None:
            self.trace.event(
                "health.alarm",
                node=alarm.node,
                attrs={"alarm": alarm.name, **alarm.details},
            )
        self.capture_dump(alarm.name, node=alarm.node or None)

    # -- dumps -------------------------------------------------------------

    def capture_dump(self, reason: str, *, node: str | None = None,
                     detail: str = "") -> HealthDump:
        """Snapshot flight recorders (one node's, or all) into a dump."""
        if node is not None:
            recorder = self.recorder_for(node)
            jsonl = recorder.dump_jsonl()
            count = len(recorder.records)
        else:
            parts = []
            count = 0
            for node_id in sorted(self.recorders):
                recorder = self.recorders[node_id]
                parts.append(recorder.dump_jsonl())
                count += len(recorder.records)
            jsonl = "\n".join(part for part in parts if part)
        dump = HealthDump(
            reason=reason if not detail else f"{reason}: {detail}",
            node=node or "",
            time=self.clock(),
            jsonl=jsonl,
            records=count,
        )
        self.dumps.append(dump)
        if len(self.dumps) > self.config.max_dumps:
            del self.dumps[0]
        self.metrics.counter("health.dumps").inc()
        return dump

    # -- reporting ---------------------------------------------------------

    def alarm_timeline(self) -> list[dict[str, Any]]:
        """The run's alarms as plain dicts, in firing order."""
        return [
            {"t": a.time, "alarm": a.name, "node": a.node, **a.details}
            for a in self.alarms
        ]

    def snapshot(self) -> dict[str, Any]:
        """Health state for reports: SLOs, alarms, dump inventory."""
        return {
            "enabled": self.active,
            "slo": self.slo.snapshot() if self.slo is not None else {},
            "alarms": self.alarm_timeline(),
            "dumps": [
                {"reason": d.reason, "node": d.node, "t": d.time,
                 "records": d.records}
                for d in self.dumps
            ],
        }
