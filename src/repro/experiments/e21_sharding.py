"""E21 — sharded, replicated federation at scale.

Two instruments aimed at the same claim: consistent-hash sharding keeps
the *per-registry* cost of a replicate-ads federation at ~K·R/S while
quorum writes and fault-masked reads keep discovery correct through
replica failures.

**Ring sweep (analytic, 100k advertisements).** Pure placement math on
the production :class:`~repro.core.sharding.ConsistentHashRing`: for
each federation size S the sweep measures per-node store load against
the ideal K·R/S, the scoped anti-entropy digest a partner pair exchanges
against the full-store digest an unsharded federation gossips, and the
number of replica assignments a join/leave moves against the minimal-
movement bound K·R/S (1.25x slack for virtual-node variance).

**Live fault scenario (16 registries).** A 16-LAN replicate-ads
deployment with sharding on (R=3, W=2) absorbs an adversarial
``replica-kill``: R−1 of one shard's replicas fail-stop at once and
*stay down*. A steady probe stream must keep succeeding — the planner's
read cover routes around the dead replicas and the retarget path masks
the stragglers — with success >= 0.99 across the run. Two same-seed
runs must export byte-identical traces, and the scenario with sharding
*disabled* (knobs present but ``enabled=False``) must be byte-identical
to one that never mentions sharding at all: the inert-by-default
contract the shard-smoke gate enforces.
"""

from __future__ import annotations

from repro.core.config import COOPERATION_REPLICATE_ADS, DiscoveryConfig
from repro.core.invariants import (
    assert_invariants,
    check_convergence,
    check_shard_placement,
)
from repro.core.protocol import DigestPayload
from repro.core.sharding import ConsistentHashRing, ShardingConfig
from repro.core.system import DiscoverySystem
from repro.experiments.common import ExperimentResult
from repro.netsim.faults import FaultPlan
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])

#: Ring-sweep scale: the acceptance criteria quote 100k advertisements.
SWEEP_KEYS = 100_000
SWEEP_SIZES = (4, 8, 16)
R = 3
#: Virtual-node variance allowance on the K·R/S minimal-movement bound.
MOVE_SLACK = 1.25

#: Live scenario shape.
LIVE_REGISTRIES = 16
LIVE_SERVICES = 32
KILL_AT = 20.0
END_AT = 80.0
PROBE_INTERVAL = 0.5


def _radar(name: str) -> ServiceProfile:
    return ServiceProfile.build(name, "ncw:RadarService",
                                outputs=["ncw:AirTrack"])


# -- ring sweep (analytic) ---------------------------------------------------


def ring_sweep(*, keys: int = SWEEP_KEYS, sizes=SWEEP_SIZES,
               r: int = R) -> list[dict]:
    """Placement economics per federation size, on the production ring."""
    ad_ids = [f"ad-{k:06d}" for k in range(keys)]
    rows = []
    for size in sizes:
        members = [f"registry-{i:02d}" for i in range(size)]
        ring = ConsistentHashRing(virtual_nodes=64, seed=0)
        for member in members:
            ring.add(member)
        placement = {ad_id: ring.replicas_for(ad_id, r) for ad_id in ad_ids}

        counts = dict.fromkeys(members, 0)
        pair_shared: dict[tuple[str, str], int] = {}
        for ad_id, replicas in placement.items():
            for member in replicas:
                counts[member] += 1
            for i, a in enumerate(replicas):
                for b in replicas[i + 1:]:
                    pair_shared[tuple(sorted((a, b)))] = \
                        pair_shared.get(tuple(sorted((a, b))), 0) + 1
        mean_store = sum(counts.values()) / size
        # Digest economics: a scoped digest carries only the co-owned
        # entries of one partner pair; the unsharded baseline gossips the
        # whole store. Sized with the real payload arithmetic.
        entry = ("ad-000000", 1, 0)
        per_entry = (DigestPayload(entries=(entry,)).size_bytes()
                     - DigestPayload().size_bytes())
        mean_shared = (sum(pair_shared.values()) / len(pair_shared)
                       if pair_shared else 0.0)
        scoped_bytes = DigestPayload().size_bytes() + per_entry * mean_shared
        full_bytes = DigestPayload().size_bytes() + per_entry * keys

        # Membership churn: one join, one leave, counted in replica
        # assignments that change owner (= copies that must move).
        joined = ring.clone()
        joined.add(f"registry-{size:02d}")
        join_moved = sum(
            len(set(joined.replicas_for(ad_id, r)) - set(placement[ad_id]))
            for ad_id in ad_ids
        )
        left = ring.clone()
        left.remove(members[0])
        leave_moved = sum(
            len(set(left.replicas_for(ad_id, r)) - set(placement[ad_id]))
            for ad_id in ad_ids
        )
        rows.append({
            "registries": size,
            "ideal_store": keys * r / size,
            "mean_store": mean_store,
            "max_over_mean": max(counts.values()) / mean_store,
            "scoped_digest_bytes": round(scoped_bytes),
            "full_digest_bytes": full_bytes,
            "digest_ratio": scoped_bytes / full_bytes,
            "join_moved": join_moved,
            "join_bound": keys * r / (size + 1) * MOVE_SLACK,
            "leave_moved": leave_moved,
            "leave_bound": keys * r / size * MOVE_SLACK,
        })
    return rows


# -- live fault scenario -----------------------------------------------------


def _sharded_config(enabled: bool = True) -> DiscoveryConfig:
    return DiscoveryConfig(
        cooperation=COOPERATION_REPLICATE_ADS, default_ttl=0,
        antientropy_interval=2.0, lease_duration=30.0, purge_interval=2.0,
        query_timeout=2.0, aggregation_timeout=0.3,
        sharding=ShardingConfig(
            enabled=enabled, replication_factor=R, write_quorum=2,
            quorum_timeout=0.5,
        ),
    )


def _build_live(seed: int, config: DiscoveryConfig):
    """One registry per LAN, chained seeds, services round-robin."""
    system = DiscoverySystem(seed=seed, ontology=battlefield_ontology(),
                             config=config)
    for i in range(LIVE_REGISTRIES):
        system.add_lan(f"lan-{i}")
    for i in range(LIVE_REGISTRIES):
        system.add_registry(
            f"lan-{i}", node_id=f"registry-{i:02d}",
            seeds=(f"registry-{(i + 1) % LIVE_REGISTRIES:02d}",),
        )
    for i in range(LIVE_SERVICES):
        system.add_service(f"lan-{i % LIVE_REGISTRIES}", _radar(f"radar-{i}"))
    clients = [system.add_client(f"lan-{i}") for i in range(4)]
    return system, clients


def _schedule_probes(system, clients) -> list:
    calls: list = []
    t, i = 5.0, 0
    while t < END_AT - 2.0:
        client = clients[i % len(clients)]

        def probe(client=client) -> None:
            if client.alive:
                calls.append(client.discover(REQUEST, model_id="semantic"))

        system.sim.schedule_at(t, probe)
        t += PROBE_INTERVAL
        i += 1
    return calls


def run_live_scenario(*, seed: int = 0, faulted: bool = True,
                      config: DiscoveryConfig | None = None) -> dict:
    """One full live run; returns probe stats, traces, and counters."""
    config = config or _sharded_config()
    system, clients = _build_live(seed, config)
    probes = _schedule_probes(system, clients)
    applied = None
    if faulted:
        # R−1 replicas of one shard fail-stop at once and stay down.
        applied = FaultPlan().kill_replicas(
            KILL_AT, key="ad-kill-probe", count=R - 1
        ).apply(system)
    system.run(until=END_AT)
    system.run_for(5.0)  # drain in-flight probes

    victims = sorted(
        {e.node_id for e in applied.history if e.kind == "crash"}
    ) if applied else []
    dead_lans = {
        r.lan_name for r in system.registries if r.node_id in victims
    }
    # Services on a dead registry's LAN lose their coordinator, so their
    # leases eventually lapse everywhere; probes are graded against the
    # services that still have a live coordinator.
    expected = sorted(
        s.profile.service_name for s in system.services
        if s.lan_name not in dead_lans
    )
    completed = [c for c in probes if c.completed]
    ok = [
        c for c in completed
        if set(expected) <= set(c.service_names())
    ]
    registries = [r for r in system.registries if r.alive]
    stores = [len(r.store) for r in registries]
    shard_counters: dict[str, int] = {}
    for registry in registries:
        for key, value in registry.shard.counters().items():
            shard_counters[key] = shard_counters.get(key, 0) + value
    # Digest economics measured on the live stores: scoped partner
    # digests vs the full digest the unsharded protocol would gossip.
    digest_scoped = digest_full = 0
    probe_registry = next((r for r in registries if r.shard.active()), None)
    if probe_registry is not None:
        peers = probe_registry.shard.shard_peers()
        if peers:
            digest_scoped = max(
                probe_registry.antientropy.digest(p).size_bytes()
                for p in peers
            )
        digest_full = probe_registry.antientropy.digest().size_bytes()
    if not faulted:
        assert_invariants(system)
    return {
        "victims": victims,
        "probes": len(probes),
        "completed": len(completed),
        "ok": len(ok),
        "success": len(ok) / len(probes) if probes else 1.0,
        "store_mean": sum(stores) / len(stores) if stores else 0.0,
        "store_max": max(stores) if stores else 0,
        "digest_scoped_bytes": digest_scoped,
        "digest_full_bytes": digest_full,
        "shard_counters": shard_counters,
        "placement_violations": check_shard_placement(system),
        "convergence_violations": check_convergence(system),
        "trace": system.sim.trace.export_jsonl(),
        "faults": dict(applied.counts()) if applied is not None else {},
    }


# -- the experiment ----------------------------------------------------------


def run(*, seed: int = 0) -> ExperimentResult:
    """Ring sweep + live replica-kill scenario: the E21 result table."""
    result = ExperimentResult(
        experiment="E21",
        description="sharded federation: per-node load ~K*R/S, scoped "
                    "digests, bounded churn, and queries surviving an "
                    "R-1 replica kill",
    )
    for row in ring_sweep():
        result.add(run="ring-sweep", **row)
    live = run_live_scenario(seed=seed, faulted=True)
    result.add(
        run="replica-kill",
        registries=LIVE_REGISTRIES,
        ideal_store=None,
        mean_store=live["store_mean"],
        max_over_mean=(live["store_max"] / live["store_mean"]
                       if live["store_mean"] else 0.0),
        scoped_digest_bytes=live["digest_scoped_bytes"],
        full_digest_bytes=live["digest_full_bytes"],
        digest_ratio=(live["digest_scoped_bytes"] / live["digest_full_bytes"]
                      if live["digest_full_bytes"] else 0.0),
        join_moved=None, join_bound=None,
        leave_moved=None, leave_bound=None,
        probes=live["probes"],
        success=live["success"],
        victims=",".join(live["victims"]),
    )
    result.metrics["shard_counters"] = live["shard_counters"]
    result.metrics["faults_applied"] = live["faults"]
    result.note(
        "per-node store load tracks K*R/S with max/mean under 1.35 at "
        "every sweep size; scoped partner digests shrink anti-entropy "
        "traffic by ~the sharding factor; a join or leave moves no more "
        "than K*R/S copies (1.25x virtual-node slack); and with R-1 "
        "replicas of a shard fail-stopped the probe stream keeps "
        "succeeding through the read cover and retarget mask."
    )
    return result


def run_shard_smoke(*, seed: int = 0) -> dict:
    """The canonical sharded scenario for the tier-2 smoke gate.

    Returns everything the smoke assertions need: the faulted run's
    probe stats and placement sweep, a same-seed repeat (trace bytes
    asserted identical), the analytic sweep bounds, and the inertness
    pair — the live scenario with sharding knobs present-but-disabled
    vs a config that never mentions sharding, asserted byte-identical.
    """
    faulted = run_live_scenario(seed=seed, faulted=True)
    repeat = run_live_scenario(seed=seed, faulted=True)
    # Inertness: non-default shard knobs behind enabled=False must be
    # indistinguishable from the built-in default configuration.
    tuned_off = DiscoveryConfig(
        cooperation=COOPERATION_REPLICATE_ADS, default_ttl=0,
        antientropy_interval=2.0, lease_duration=30.0, purge_interval=2.0,
        query_timeout=2.0, aggregation_timeout=0.3,
        sharding=ShardingConfig(
            enabled=False, replication_factor=5, write_quorum=4,
            virtual_nodes=16, quorum_timeout=9.0,
        ),
    )
    plain = DiscoveryConfig(
        cooperation=COOPERATION_REPLICATE_ADS, default_ttl=0,
        antientropy_interval=2.0, lease_duration=30.0, purge_interval=2.0,
        query_timeout=2.0, aggregation_timeout=0.3,
    )
    off_a = run_live_scenario(seed=seed, faulted=False, config=tuned_off)
    off_b = run_live_scenario(seed=seed, faulted=False, config=plain)
    return {
        "seed": seed,
        "sweep": ring_sweep(),
        "faulted": faulted,
        "repeat_trace": repeat["trace"],
        "off_trace_tuned": off_a["trace"],
        "off_trace_plain": off_b["trace"],
        "off_counters": off_a["shard_counters"],
    }
