"""E13 (extension) — notifications vs polling.

"Some systems today also allow registration for notifications about
service advertisements of interest." The paper lists this as an optional
capability; this experiment quantifies why it matters in dynamic
environments: a client that *polls* for newly appearing services pays
query bandwidth proportional to its polling rate and still detects new
services half a period late on average; a client with a standing query
(leased subscription) is notified within one message latency at near-zero
steady-state cost.

Setup: one registry; services of interest appear one at a time at known
instants; the watcher and pollers (at several periods) race to detect
each arrival. Reported per mode: mean detection latency and total bytes.
"""

from __future__ import annotations

from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.experiments.common import ExperimentResult, mean
from repro.metrics.bandwidth import TrafficWindow
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

#: The standing need used by every mode.
REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])


def _deploy(seed: int):
    config = DiscoveryConfig(lease_duration=20.0, purge_interval=5.0,
                             beacon_interval=None)
    system = DiscoverySystem(seed=seed, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    client = system.add_client("lan-0")
    return system, client


def _arrival_schedule(n_arrivals: int, spacing: float, start: float = 5.0):
    return [start + i * spacing for i in range(n_arrivals)]


def _spawn_services(system, arrivals):
    for index, when in enumerate(arrivals):
        system.sim.schedule_at(when, lambda i=index: system.add_service(
            "lan-0",
            ServiceProfile.build(
                f"late-radar-{i}", "ncw:RadarService", outputs=["ncw:AirTrack"]
            ),
        ))


def run(
    *,
    n_arrivals: int = 5,
    spacing: float = 10.0,
    poll_periods: tuple[float, ...] = (2.0, 10.0),
    seed: int = 0,
) -> ExperimentResult:
    """Compare subscription push against polling at several periods."""
    result = ExperimentResult(
        experiment="E13",
        description="notification push vs polling (optional feature)",
    )
    result.add(**_run_watch(n_arrivals, spacing, seed))
    for period in poll_periods:
        result.add(**_run_poll(period, n_arrivals, spacing, seed))
    result.note(
        "push detects within one message latency at near-zero steady "
        "cost; polling trades bandwidth against mean detection delay "
        "(~period/2)."
    )
    return result


def _run_watch(n_arrivals: int, spacing: float, seed: int) -> dict:
    system, client = _deploy(seed)
    arrivals = _arrival_schedule(n_arrivals, spacing)
    _spawn_services(system, arrivals)
    system.run(until=2.0)
    window = TrafficWindow.open(system.network.stats, system.sim.now)
    watch = client.watch(REQUEST)
    system.run(until=arrivals[-1] + spacing)
    report = window.close(system.sim.now)
    latencies = [
        notified - arrival
        for notified, arrival in zip(sorted(watch.notified_at), arrivals)
    ]
    return {
        "mode": "subscribe",
        "detected": len(watch.hits),
        "of": n_arrivals,
        "mean_detection_s": mean(latencies),
        "bytes": report["bytes_sent"],
    }


def _run_poll(period: float, n_arrivals: int, spacing: float, seed: int) -> dict:
    system, client = _deploy(seed)
    arrivals = _arrival_schedule(n_arrivals, spacing)
    _spawn_services(system, arrivals)
    system.run(until=2.0)
    window = TrafficWindow.open(system.network.stats, system.sim.now)

    detected: dict[str, float] = {}

    def poll() -> None:
        if not client.alive:
            return
        call = client.discover(REQUEST)

        def harvest() -> None:
            for name in call.service_names():
                detected.setdefault(name, system.sim.now)

        system.sim.schedule(1.0, harvest)

    handle = system.sim.every(period, poll)
    system.run(until=arrivals[-1] + spacing)
    handle.stop()
    report = window.close(system.sim.now)
    latencies = [
        detected[f"late-radar-{i}"] - arrivals[i]
        for i in range(n_arrivals)
        if f"late-radar-{i}" in detected
    ]
    return {
        "mode": f"poll@{period:g}s",
        "detected": len(detected),
        "of": n_arrivals,
        "mean_detection_s": mean(latencies),
        "bytes": report["bytes_sent"],
    }
