"""E19 (extension) — durable crash recovery: WAL + snapshot vs memory-only.

The architecture's stock answer to registry failure is soft state:
"should a service crash … the service description would be purged", and
symmetrically a crashed registry rebuilds its content from republishes
when leases lapse. That works for a *single* registry death (replicas
cover the gap) but not for a **correlated outage** — a whole-LAN blackout
or rolling restart that takes every replica down at once loses every
advertisement until each service's next renew cycle notices the NACK and
republishes from scratch.

E19 stages exactly that worst case: three federated LANs replicating
advertisements reach steady state, then *every* registry crashes at once
and restarts two seconds later, in the quiet stretch between two renew
ticks. Measured per mode (memory-only vs WAL+snapshot durability):

* **recovered fraction** — advertisements back in the stores immediately
  after restart, from local replay alone (before any anti-entropy round);
* **time-to-full-query-success** — seconds from restart until a client
  query returns every expected service again;
* **re-publish traffic** — PUBLISH messages in the recovery window (the
  durable path restores the original lease ids, so renewals keep
  succeeding and services never notice the outage: zero republishes);
* **anti-entropy bytes** — the delta-repair cost in the recovery window.

``run_disk_faults`` injects torn tail writes and record corruption into
the WAL during the crash and shows recovery surviving both: the damaged
records are skipped and counted, and the next anti-entropy delta round
repairs whatever they lost.
"""

from __future__ import annotations

from repro.core.config import COOPERATION_REPLICATE_ADS, DiscoveryConfig
from repro.core.durability import DurabilityConfig
from repro.core.invariants import (
    check_convergence,
    check_recovery,
    store_snapshot,
)
from repro.core.system import DiscoverySystem
from repro.experiments.common import ExperimentResult
from repro.netsim.faults import FaultPlan
from repro.obs.report import build_capacity_report, write_report
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])

#: Whole-LAN blackout window: between the renew ticks at 24s and 48s
#: (lease 60s, renew fraction 0.4), so services themselves never notice.
BLACKOUT_AT = 32.0
RESTART_AT = 34.0


def _config(durable: bool) -> DiscoveryConfig:
    return DiscoveryConfig(
        cooperation=COOPERATION_REPLICATE_ADS,
        default_ttl=0,
        antientropy_interval=5.0,
        lease_duration=60.0,
        purge_interval=5.0,
        query_timeout=2.0,
        aggregation_timeout=0.3,
        fallback_enabled=False,
        durability=DurabilityConfig(enabled=True) if durable
        else DurabilityConfig(),
    )


def _build(durable: bool, seed: int, *, services_per_lan: int = 2):
    """Three replicating LANs, one registry each, ring-federated."""
    system = DiscoverySystem(
        seed=seed, ontology=battlefield_ontology(), config=_config(durable)
    )
    for i in range(3):
        system.add_lan(f"lan-{i}")
        system.add_registry(f"lan-{i}")
    system.federate_ring()
    for i in range(3):
        for j in range(services_per_lan):
            system.add_service(f"lan-{i}", ServiceProfile.build(
                f"radar-{i}-{j}", "ncw:RadarService", outputs=["ncw:AirTrack"]
            ))
    client = system.add_client("lan-0")
    return system, client


def capacity_report(result: ExperimentResult, *, seed: int,
                    window: float = 25.0) -> dict:
    """E19 as a recovery-capacity report: one point per durability mode.

    The "load" axis is degenerate (one probing client), so the point's
    ``qps`` is the recovery-window probe rate and the objective is on
    *recovery* quality: a mode holds when local replay restored >= 99% of
    the advertisements and full query success returned within half the
    recovery window.
    """
    return build_capacity_report(
        "E19",
        seed=seed,
        points=[
            {
                "qps": 2.0,  # the 0.5 s TTFS probe cadence
                "success": row["recovered_frac"],
                "latency": row["ttfs"],
                "durability": row["durability"],
                "republishes": row["republishes"],
            }
            for row in result.rows
        ],
        success_target=0.99,
        latency_target=window / 2.0,
        notes=(
            "success = fraction recovered by local replay alone; "
            "latency = time-to-full-query-success after restart",
        ),
    )


def run(*, window: float = 25.0, seed: int = 0,
        report_dir: str | None = None) -> ExperimentResult:
    """Whole-LAN blackout at steady state: durability on vs memory-only.

    ``report_dir`` additionally writes the recovery outcome as a
    capacity-planning report (see :mod:`repro.obs.report`).
    """
    result = ExperimentResult(
        experiment="E19",
        description="durable crash recovery after a whole-LAN blackout",
    )
    for durable in (False, True):
        result.add(**_run_one(durable, window, seed))
    result.note(
        "the durable registries replay their snapshot+WAL at restart, so "
        "the client's next query already sees the full service set and "
        "lease renewals keep succeeding (zero republish traffic); the "
        "memory-only registries restart empty and serve misses until the "
        "next renew tick NACKs and every service republishes from scratch."
    )
    if report_dir is not None:
        write_report(capacity_report(result, seed=seed, window=window),
                     report_dir)
    return result


def _run_one(durable: bool, window: float, seed: int) -> dict:
    system, client = _build(durable, seed)
    expected = len(system.services)
    system.run(until=BLACKOUT_AT - 2.0)

    # Steady state reached: the client must already see every service.
    pre_call = system.discover(client, REQUEST, timeout=3.0)
    pre_hits = len(pre_call.hits)
    pre_stores = {
        r.node_id: store_snapshot(r) for r in system.registries
    }
    pre_counts = {rid: len(snap) for rid, snap in pre_stores.items()}
    pre_traffic = system.network.stats.snapshot()

    for registry in system.registries:
        system.sim.schedule_at(BLACKOUT_AT, registry.crash)
        system.sim.schedule_at(RESTART_AT, registry.restart)
    system.run(until=RESTART_AT + 0.001)

    # Recovered fraction from *local replay alone*: measured immediately
    # after restart, before the first anti-entropy round can repair
    # anything over the network.
    recovered = sum(len(r.store) for r in system.registries)
    total = sum(pre_counts.values())
    recovery_violations: list[str] = []
    if durable:
        for registry in system.registries:
            recovery_violations += check_recovery(
                registry, pre_stores[registry.node_id]
            )

    # Time-to-full-query-success: poll until the client sees the full
    # pre-crash service set again.
    ttfs = window
    deadline = RESTART_AT + window
    while system.sim.now < deadline:
        call = system.discover(client, REQUEST, timeout=2.0)
        if call.completed and len(call.hits) >= pre_hits:
            ttfs = system.sim.now - RESTART_AT
            break
        system.run_for(0.5)
    system.run(until=deadline)

    recovery_traffic = system.network.stats.delta_since(pre_traffic)
    by_type = recovery_traffic["by_type"]
    republishes = by_type.get("publish", {}).get("count", 0)
    antientropy_bytes = sum(
        entry["bytes"] for msg_type, entry in by_type.items()
        if msg_type.startswith("antientropy-")
    )
    wal = {
        key: sum(r.durability.counters()[key] for r in system.registries)
        for key in ("wal_appends", "replayed", "snapshots", "recoveries")
    }
    return {
        "durability": "wal+snapshot" if durable else "memory-only",
        "services": expected,
        "pre_crash_hits": pre_hits,
        "recovered": recovered,
        "recovered_frac": recovered / total if total else 0.0,
        "recovery_violations": len(recovery_violations),
        "ttfs": ttfs,
        "republishes": republishes,
        "antientropy_bytes": antientropy_bytes,
        "wal_appends": wal["wal_appends"],
        "replayed": wal["replayed"],
        "snapshots": wal["snapshots"],
    }


def run_disk_faults(*, seed: int = 0) -> ExperimentResult:
    """Torn tail writes and record corruption during the crash.

    One registry crashes with its WAL tail torn mid-write, another with a
    byte flipped in the middle of its *snapshot* — the worst case, losing
    the whole compacted state, not just one record. Recovery must survive
    both — damaged frames are skipped and counted, never raised — and the
    next anti-entropy delta round restores full replica convergence.
    """
    result = ExperimentResult(
        experiment="E19",
        description="recovery under injected disk faults (torn/corrupt WAL)",
    )
    system, client = _build(True, seed)
    expected = len(system.services)
    r0, r1 = system.registries[0], system.registries[1]
    plan = (
        FaultPlan()
        .crash(30.0, r0.node_id)
        .disk_torn_write(30.5, r0.node_id, file="wal")
        .restart(31.5, r0.node_id)
        .crash(40.0, r1.node_id)
        .disk_corrupt(40.5, r1.node_id, file="snap")
        .restart(41.5, r1.node_id)
    )
    applied = plan.apply(system)
    # Two anti-entropy intervals past the second restart: time enough for
    # the delta round to repair whatever the damaged records lost.
    system.run(until=52.0)
    call = system.discover(client, REQUEST, timeout=3.0)
    violations = check_convergence(system)
    disks = system.network.disks
    result.add(
        faults=sum(applied.counts().values()),
        torn_writes=sum(d.torn_writes for d in disks.values()),
        corruptions=sum(d.corruptions for d in disks.values()),
        corrupt_skipped=sum(
            r.durability.corrupt_skipped for r in system.registries
        ),
        recoveries=sum(r.durability.recoveries for r in system.registries),
        hits_after=len(call.hits),
        expected=expected,
        convergence_violations=len(violations),
    )
    result.note(
        "neither the torn tail nor the flipped byte crashes recovery: "
        "replay stops at (or skips past) the damaged frame, the loss is "
        "counted, and the join-time anti-entropy digest plus the next "
        "periodic round repair the replicas back to full convergence."
    )
    return result
