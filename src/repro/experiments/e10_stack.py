"""E10 — Figure 5/§4.2: one generic stack, several description models.

"It should also be possible to use different query evaluation or
matchmaking strategies … This is different from for example UDDI, where
the registry information model is closely tied to the message formats."
And: "semantic service advertisements can become quite large, compared to
the use of for example URI strings" — with the compression/binary-XML
"hook" the MILCOM paper suggests for exactly that problem.

The same capability is published and queried under each model through the
same registry, and we measure the wire: advertisement payload size, query
payload size, publish and response message bytes, and the share of every
message that is generic-envelope overhead. A compressed-semantic variant
models the binary-XML hook (payload compression ratio 0.25).
"""

from __future__ import annotations

from repro.core.config import DiscoveryConfig
from repro.experiments.common import ExperimentResult
from repro.netsim.messages import SizeModel
from repro.semantics.generator import ProfileGenerator, emergency_ontology
from repro.workloads.scenarios import ScenarioSpec, build_scenario
from repro.workloads.queries import QueryWorkload, QueryDriver

MODELS = ("uri", "template", "semantic")


def run(
    *,
    n_services: int = 6,
    n_queries: int = 6,
    compressed_ratio: float = 0.25,
    seed: int = 0,
) -> ExperimentResult:
    """Measure wire costs per description model on the shared stack."""
    result = ExperimentResult(
        experiment="E10",
        description="description models on one generic stack: wire sizes (Fig. 5)",
    )
    for model_id in MODELS:
        result.add(**_run_one(model_id, n_services, n_queries, seed,
                              size_model=SizeModel()))
    result.add(**_run_one(
        "semantic", n_services, n_queries, seed,
        size_model=SizeModel(compression_ratio=compressed_ratio),
        label="semantic+zip",
    ))
    result.note(
        "all models flow through identical publish/renew/query messages — "
        "only the payload differs; semantic payloads are an order of "
        "magnitude larger than URIs, which compression (the paper's "
        "binary-XML hook) substantially recovers."
    )
    return result


def _run_one(model_id: str, n_services: int, n_queries: int, seed: int,
             *, size_model: SizeModel, label: str | None = None) -> dict:
    spec = ScenarioSpec(
        name=f"e10-{label or model_id}",
        lan_names=("lan-0",),
        ontology_factory=emergency_ontology,
        registries_per_lan=1,
        services_per_lan=n_services,
        clients_per_lan=1,
        federation="none",
        model_ids=(model_id,),
        seed=seed,
    )
    built = build_scenario(spec, config=DiscoveryConfig(lease_duration=20.0))
    system = built.system
    system.network.size_model = size_model
    system.run(until=2.0)

    workload = QueryWorkload.anchored(
        built.generator, built.profiles, n_queries, generalize=1
    )
    driver = QueryDriver(system, workload, model_id=model_id, interval=0.5, seed=seed)
    issued = driver.play(settle=0.0, drain=30.0)
    completed = [q for q in issued if q.call.completed]

    stats = system.network.stats
    model = system.clients[0].models.get(model_id)
    sample_profile = built.profiles[0]
    ad_payload = model.describe(sample_profile, "svc://sample")
    query_payload = model.query_from(workload.labelled[0].request)

    def per_message(msg_type: str) -> float:
        count = stats.by_type_count.get(msg_type, 0)
        return stats.by_type_bytes.get(msg_type, 0) / count if count else 0.0

    publish_bytes = per_message("publish")
    overhead = size_model.envelope_overhead
    return {
        "model": label or model_id,
        "ad_payload_bytes": _payload_size(ad_payload, size_model),
        "query_payload_bytes": _payload_size(query_payload, size_model),
        "publish_msg_bytes": publish_bytes,
        "renew_msg_bytes": per_message("renew"),
        "response_msg_bytes": per_message("query-response"),
        "envelope_share": overhead / publish_bytes if publish_bytes else None,
        "recall_proxy": sum(
            1 for q in completed if q.call.hits
        ) / max(len(completed), 1),
    }


def _payload_size(payload, size_model: SizeModel) -> int:
    from repro.netsim.messages import estimate_payload_size

    return int(estimate_payload_size(payload) * size_model.compression_ratio)
