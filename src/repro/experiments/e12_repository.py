"""E12 — §4.6/§2: the registry network as ontology repository.

"Moreover, service discovery should work in environments disconnected
from the Internet. In some cases, additional ontologies may be needed by
clients for them to be able to evaluate and use services. Such
functionality could be provided by the discovery service."

Scenario: LAN B's registry is deployed *without* the shared ontology (its
semantic model cannot evaluate), while LAN A's registry hosts the
ontology in its repository. A semantic-only service and a client sit on
LAN B.

* ``sync=off`` — registry B silently discards semantic queries it cannot
  evaluate; the client loses every B-local semantic result (forwarding
  still reaches A, which knows nothing about B's services).
* ``sync=on``  — on federating with A, registry B notices the advertised
  artifact, fetches the ontology over the discovery protocol, attaches
  it, and serves semantic queries normally.
* ``thin-client`` — a client built without the ontology still discovers
  services, because selection is delegated to (ontology-bearing)
  registries — the paper's "limited clients … delegate service selection
  to registry nodes".
"""

from __future__ import annotations

from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.experiments.common import ExperimentResult
from repro.semantics.generator import ProfileGenerator, emergency_ontology
from repro.semantics.profiles import ServiceRequest


def run(*, n_services: int = 3, n_queries: int = 5, seed: int = 0) -> ExperimentResult:
    """Compare artifact sync on/off, plus the thin-client row."""
    result = ExperimentResult(
        experiment="E12",
        description="ontology repository in the registry network (§4.6)",
    )
    for sync in (False, True):
        result.add(**_run_one(sync, n_services, n_queries, seed))
    result.add(**_thin_client(n_services, n_queries, seed))
    result.note(
        "without artifact sync a semantically-blind registry discards the "
        "queries; the repository mechanism restores full recall at the "
        "cost of one ontology transfer."
    )
    return result


def _build(sync: bool, n_services: int, seed: int):
    ontology = emergency_ontology()
    system = DiscoverySystem(
        seed=seed,
        ontology=ontology,
        config=DiscoveryConfig(artifact_sync=sync),
    )
    system.add_lan("lan-a")
    system.add_lan("lan-b")
    reg_a = system.add_registry("lan-a")
    reg_b = system.add_registry("lan-b", with_ontology=False)
    system.federate(reg_a, reg_b)
    generator = ProfileGenerator(ontology, seed=seed)
    profiles = [generator.random_profile(i) for i in range(n_services)]
    for profile in profiles:
        system.add_service("lan-b", profile, model_ids=("semantic",))
    client = system.add_client("lan-b", model_ids=("semantic",))
    return system, generator, profiles, client, reg_b


def _run_one(sync: bool, n_services: int, n_queries: int, seed: int) -> dict:
    system, generator, profiles, client, reg_b = _build(sync, n_services, seed)
    system.run(until=5.0)
    labelled = generator.labelled_requests(profiles, n_queries, generalize=1)
    hits = 0
    relevant_found = 0
    relevant_total = 0
    for item in labelled:
        call = system.discover(client, item.request)
        returned = frozenset(call.service_names())
        hits += len(returned)
        relevant_found += len(returned & item.relevant)
        relevant_total += len(item.relevant)
    artifact_bytes = system.network.stats.by_type_bytes.get("artifact-reply", 0)
    return {
        "variant": f"sync={'on' if sync else 'off'}",
        "registry_b_can_evaluate": reg_b.models.get("semantic").can_evaluate(),
        "recall": relevant_found / relevant_total if relevant_total else 0.0,
        "queries": n_queries,
        "artifact_bytes": artifact_bytes,
        "discarded_queries": reg_b.evaluator.queries_discarded,
    }


def _thin_client(n_services: int, n_queries: int, seed: int) -> dict:
    """A client without the ontology: registry-side selection carries it."""
    ontology = emergency_ontology()
    system = DiscoverySystem(seed=seed, ontology=ontology)
    system.add_lan("lan-a")
    system.add_registry("lan-a")
    generator = ProfileGenerator(ontology, seed=seed)
    profiles = [generator.random_profile(i) for i in range(n_services)]
    for profile in profiles:
        system.add_service("lan-a", profile, model_ids=("semantic",))
    client = system.add_client("lan-a", model_ids=("semantic",),
                               with_ontology=False)
    system.run(until=3.0)
    labelled = generator.labelled_requests(profiles, n_queries, generalize=1)
    relevant_found = 0
    relevant_total = 0
    for item in labelled:
        call = system.discover(client, item.request)
        relevant_found += len(frozenset(call.service_names()) & item.relevant)
        relevant_total += len(item.relevant)
    return {
        "variant": "thin-client",
        "registry_b_can_evaluate": True,
        "recall": relevant_found / relevant_total if relevant_total else 0.0,
        "queries": n_queries,
        "artifact_bytes": 0,
        "discarded_queries": 0,
    }
