"""E14 (extension) — §4.3: mediator selection rescues failed queries.

"An interesting service is found, but an additional translation or
mediation service may be needed to use it." We generate needs that no
deployed service satisfies *directly* (the client cannot supply the
producer's vocabulary) but that a producer + translator pair satisfies,
and measure how many such needs each approach serves:

* plain discovery — fails by construction,
* mediated discovery — finds the two-step plan, at the cost of the extra
  queries the paper predicts.

This capability only exists in the semantic model: the planner reasons
over input/output concepts, which URI/keyword advertisements do not carry.
"""

from __future__ import annotations

from repro.core.config import DiscoveryConfig
from repro.core.mediation import MediationPlanner
from repro.core.system import DiscoverySystem
from repro.experiments.common import ExperimentResult, mean
from repro.semantics.generator import emergency_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

TRANSLATOR_CATEGORY = "ems:TranslationService"

#: (producer output, translated output) vocabulary bridges.
BRIDGES = (
    ("ems:DamageReport", "ems:CasualtyReport"),
    ("ems:WeatherReport", "ems:WeatherAlert"),
    ("ems:FloodMap", "ems:RoadMap"),
)


def _deploy(seed: int, *, with_translators: bool):
    system = DiscoverySystem(seed=seed, ontology=emergency_ontology(),
                             config=DiscoveryConfig())
    system.add_lan("lan-0")
    system.add_lan("lan-1")
    system.add_registry("lan-0")
    system.add_registry("lan-1")
    system.federate_chain()
    for index, (source, target) in enumerate(BRIDGES):
        lan = f"lan-{index % 2}"
        system.add_service(lan, ServiceProfile.build(
            f"producer-{index}", "ems:InformationService", outputs=[source],
        ))
        if with_translators:
            system.add_service(lan, ServiceProfile.build(
                f"translator-{index}", TRANSLATOR_CATEGORY,
                inputs=[source], outputs=[target],
            ))
    client = system.add_client("lan-0")
    return system, client


def _needs() -> list[ServiceRequest]:
    # The client can supply only its own location, never the producers'
    # report vocabulary — so translators fail the direct input check.
    return [
        ServiceRequest.build(None, outputs=[target],
                             inputs=["ems:IncidentLocation"])
        for _source, target in BRIDGES
    ]


def run(*, seed: int = 0) -> ExperimentResult:
    """Measure plain vs mediated satisfaction of translation-needing queries."""
    result = ExperimentResult(
        experiment="E14",
        description="mediator selection: two-step discovery (§4.3)",
    )
    for mode in ("plain", "mediated", "mediated-no-translators"):
        result.add(**_run_one(mode, seed))
    result.note(
        "mediation rescues every bridgeable need at ~2 extra queries "
        "each; without deployed translators it degrades gracefully to "
        "plain discovery's answer."
    )
    return result


def _run_one(mode: str, seed: int) -> dict:
    system, client = _deploy(
        seed, with_translators=(mode != "mediated-no-translators")
    )
    system.run(until=3.0)
    planner = MediationPlanner(system, translator_category=TRANSLATOR_CATEGORY)
    satisfied = 0
    extra_queries = []
    plans = 0
    for request in _needs():
        if mode == "plain":
            call = system.discover(client, request)
            satisfied += 1 if call.hits else 0
        else:
            outcome = planner.discover(client, request)
            satisfied += 1 if outcome.satisfied else 0
            extra_queries.append(outcome.extra_queries)
            plans += len(outcome.plans)
    return {
        "mode": mode,
        "needs": len(BRIDGES),
        "satisfied": satisfied,
        "plans_found": plans,
        "mean_extra_queries": mean(extra_queries),
    }
