"""E2 — §3.1/§3.2: query response control and "response implosion".

"This lack of query response control can at worst, if a query is too
broad, lead to 'response implosion' at the querying node … Of course, the
number of responses from each node can be limited, but still, query
response control is very coarse-grained."

One broad query (a top-level service category, matching most of the
population) is issued under both topologies while sweeping the
``max_results`` cap:

* decentralized — every matching provider answers; the client receives
  one response message per provider no matter what the cap is (each
  provider can only cap *its own* answers: coarse-grained control);
* registry — the registry selects; the client receives one response
  message containing at most ``max_results`` hits (fine-grained control
  that also "relieves constrained clients" of selection work).
"""

from __future__ import annotations

from repro.core.config import DiscoveryConfig
from repro.experiments.common import ExperimentResult
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceRequest
from repro.workloads.scenarios import ScenarioSpec, build_scenario

#: A deliberately broad request: the root service category.
BROAD_CATEGORY = "ncw:Service"


def run(
    *,
    n_services: int = 16,
    caps: tuple[int | None, ...] = (None, 1, 3, 5),
    seed: int = 0,
) -> ExperimentResult:
    """Sweep the response cap under both topologies."""
    result = ExperimentResult(
        experiment="E2",
        description="query response control vs response implosion (§3.1)",
    )
    for arch in ("decentralized", "registry"):
        for cap in caps:
            row = _run_one(arch, cap, n_services, seed)
            result.add(**row)
    result.note(
        "decentralized response count tracks the matching population "
        "regardless of the cap (implosion); a registry returns one "
        "message with at most max_results hits."
    )
    return result


def _run_one(arch: str, cap: int | None, n_services: int, seed: int) -> dict:
    spec = ScenarioSpec(
        name=f"e2-{arch}",
        lan_names=("lan-0",),
        ontology_factory=battlefield_ontology,
        registries_per_lan=1 if arch == "registry" else 0,
        services_per_lan=n_services,
        clients_per_lan=1,
        federation="none",
        seed=seed,
    )
    built = build_scenario(
        spec,
        config=DiscoveryConfig(fallback_timeout=1.0),
        with_registries=(arch == "registry"),
    )
    system = built.system
    system.run(until=2.0)
    request = ServiceRequest.build(BROAD_CATEGORY, max_results=cap)
    client = system.clients[0]
    call = system.discover(client, request)
    return {
        "arch": arch,
        "max_results": cap if cap is not None else "none",
        "matching_services": sum(
            1 for p in built.profiles  # every service category is under the root
        ),
        "response_messages": call.responses,
        "hits_returned": len(call.hits),
        "response_bytes": call.response_bytes,
    }
