"""E1 — Figure 1 / §3: the three discovery topologies, measured.

The paper's Figure 1 is a taxonomy sketch: decentralized (a), centralized
(b), distributed (c). §3 attaches qualitative costs to each. This
experiment instantiates all three on one LAN (the paper's §3 treats
topology abstractly, before the LAN/WAN split of §4.4) with identical
service populations and query workloads, and measures what §3 claims:

* decentralized — highest total query bandwidth (multicast query + one
  response per matching provider), zero maintenance traffic, load spread
  over all provider nodes;
* centralized — cheapest queries (one unicast round-trip), but
  publish/renew maintenance and the highest single-node load;
* distributed — between the two, with maintenance traffic plus bounded
  query fan-out among the registries.
"""

from __future__ import annotations

from repro.core.config import DiscoveryConfig
from repro.experiments.common import ExperimentResult, mean
from repro.metrics.bandwidth import TrafficWindow
from repro.metrics.retrieval import score_queries
from repro.workloads.queries import QueryDriver, QueryWorkload
from repro.workloads.scenarios import ScenarioSpec, build_scenario
from repro.semantics.generator import battlefield_ontology

ARCHITECTURES = ("decentralized", "centralized", "distributed")

#: Registries per architecture on the single LAN.
_REGISTRY_COUNT = {"decentralized": 0, "centralized": 1, "distributed": 3}


def _config() -> DiscoveryConfig:
    return DiscoveryConfig(lease_duration=20.0, purge_interval=5.0)


def run(
    *,
    service_counts: tuple[int, ...] = (4, 8, 16),
    n_clients: int = 3,
    n_queries: int = 12,
    maintenance_window: float = 30.0,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep population size across the three topologies."""
    result = ExperimentResult(
        experiment="E1",
        description="service discovery topologies (Fig. 1): bandwidth, load, recall",
    )
    for n_services in service_counts:
        for arch in ARCHITECTURES:
            row = _run_one(arch, n_services, n_clients, n_queries,
                           maintenance_window, seed)
            summary = row.pop("_obs")
            result.metrics[f"query.e2e_latency[{arch}/{n_services}]"] = summary
            result.add(**row)
    result.note(
        "decentralized pays per-query multicast + per-provider responses; "
        "centralized pays maintenance and concentrates load; distributed "
        "sits between (paper §3)."
    )
    return result


def _run_one(
    arch: str,
    n_services: int,
    n_clients: int,
    n_queries: int,
    maintenance_window: float,
    seed: int,
) -> dict:
    spec = ScenarioSpec(
        name=f"e1-{arch}",
        lan_names=("lan-0",),
        ontology_factory=battlefield_ontology,
        registries_per_lan=_REGISTRY_COUNT[arch],
        services_per_lan=n_services,
        clients_per_lan=n_clients,
        federation="none",
        seed=seed,
    )
    built = build_scenario(
        spec, config=_config(), with_registries=_REGISTRY_COUNT[arch] > 0
    )
    system = built.system
    system.run(until=2.0)

    # Maintenance phase: no queries, just upkeep.
    upkeep = TrafficWindow.open(system.network.stats, system.sim.now)
    system.run_for(maintenance_window)
    upkeep_report = upkeep.close(system.sim.now)

    # Query phase.
    workload = QueryWorkload.anchored(
        built.generator, built.profiles, n_queries, generalize=1
    )
    window = TrafficWindow.open(system.network.stats, system.sim.now)
    driver = QueryDriver(system, workload, interval=0.5, seed=seed)
    issued = driver.play(settle=0.0, drain=8.0)
    window.close(system.sim.now)

    completed = [q for q in issued if q.call.completed]
    scores = score_queries(issued)
    max_node, max_load = system.network.stats.max_node_load()
    latency = system.metrics.histogram("query.e2e_latency").summary()
    return {
        "arch": arch,
        "services": n_services,
        "queries_done": len(completed),
        "recall": scores.recall,
        "mean_responses": mean(q.call.responses for q in completed),
        "query_bytes_per_q": window.query_bytes() / max(len(completed), 1),
        "upkeep_bytes_per_s": upkeep_report["bytes_per_second"],
        "max_node_load_bytes": max_load,
        "max_node": max_node,
        "p50_ms": latency["p50"] * 1000.0,
        "p95_ms": latency["p95"] * 1000.0,
        "p99_ms": latency["p99"] * 1000.0,
        "_obs": latency,
    }
