"""E16 (extension) — roaming nodes in a multi-LAN deployment.

Dynamic environments are not only about churn: the paper's crisis scenario
has "members from several agencies, potentially at different locations"
whose devices join whatever segment they are near. This experiment roams
service nodes between LANs at increasing rates and measures how well
discovery tracks them:

* recall against the *current* placement (queries must find services
  wherever they are now),
* the publish/renew overhead mobility induces (each move costs a probe,
  a republish burst, and leaves a lease to lapse at the old registry),
* stale responses (hits naming a service's *old* registry record that has
  not lapsed yet — bounded by the lease, exactly like crash staleness).
"""

from __future__ import annotations

import random

from repro.core.config import DiscoveryConfig
from repro.experiments.common import ExperimentResult, mean
from repro.metrics.bandwidth import TrafficWindow
from repro.metrics.retrieval import score_queries
from repro.semantics.generator import battlefield_ontology
from repro.workloads.queries import QueryDriver, QueryWorkload
from repro.workloads.scenarios import ScenarioSpec, build_scenario


def run(
    *,
    lans: int = 3,
    services_per_lan: int = 2,
    move_intervals: tuple[float | None, ...] = (None, 30.0, 10.0),
    n_queries: int = 10,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep the roaming rate (``None`` = static baseline)."""
    result = ExperimentResult(
        experiment="E16",
        description="roaming services: discovery tracks mobility via leases",
    )
    for interval in move_intervals:
        result.add(**_run_one(interval, lans, services_per_lan, n_queries, seed))
    result.note(
        "each move is a re-bootstrap on the new LAN; leases erase the old "
        "record within one lease duration, so recall stays high while "
        "maintenance bytes grow with the roaming rate."
    )
    return result


def _run_one(move_interval: float | None, lans: int, services_per_lan: int,
             n_queries: int, seed: int) -> dict:
    config = DiscoveryConfig(
        lease_duration=8.0, purge_interval=1.0, beacon_interval=2.0,
        aggregation_timeout=0.3, query_timeout=3.0,
    )
    spec = ScenarioSpec(
        name=f"e16-{move_interval}",
        lan_names=tuple(f"lan-{i}" for i in range(lans)),
        ontology_factory=battlefield_ontology,
        services_per_lan=services_per_lan,
        clients_per_lan=1,
        federation="ring",
        seed=seed,
    )
    built = build_scenario(spec, config=config)
    system = built.system
    system.run(until=5.0)

    moves = 0
    if move_interval is not None:
        rng = random.Random(seed)

        def roam() -> None:
            nonlocal moves
            service = built.services[rng.randrange(len(built.services))]
            if not service.alive:
                return
            others = [name for name in spec.lan_names if name != service.lan_name]
            system.move(service, rng.choice(others))
            moves += 1

        system.sim.every(move_interval, roam)

    window = TrafficWindow.open(system.network.stats, system.sim.now)
    workload = QueryWorkload.anchored(built.generator, built.profiles,
                                      n_queries, generalize=1)
    driver = QueryDriver(system, workload, interval=6.0, seed=seed)
    issued = driver.play(settle=2.0, drain=15.0)
    report = window.close(system.sim.now)

    scores = score_queries(issued)
    return {
        "move_interval": move_interval if move_interval is not None else "static",
        "moves": moves,
        "recall": scores.recall,
        "completed": sum(1 for q in issued if q.call.completed),
        "maintenance_bytes_per_s": window.maintenance_bytes() / report["duration"],
        "mean_latency": mean(
            q.call.latency for q in issued if q.call.completed
        ),
    }
