"""E18 — adaptive load-aware routing under skewed registry load.

E17 showed admission control keeping a *uniformly* flooded deployment
alive; this experiment asks the follow-up question the dynamic-
environment premise forces: what happens when the load is **skewed** —
every client on a LAN piled onto the same registry while an idle sibling
sits next to it? With the historical static order, each client discovers
the imbalance only by paying for it: a BUSY round-trip, a server-dictated
``retry_after`` wait, a second BUSY, and finally a tracker-level
failover — per client, serially. The :mod:`repro.core.routing` strategies
instead read the health signals the protocol already carries (piggybacked
queue depths, response round-trips, BUSY cooldowns) and move *subsequent
queries* to the shallow sibling immediately.

Setup: the E17 two-LAN federated deployment with ``lan-0`` scaled out to
five *replicated* registries (``replicate-ads`` cooperation with a fast
anti-entropy clock, so every sibling holds the full advertisement set
and can answer any query locally) and the E17 shedding admission policy.
Every ``lan-0`` client is force-seeded onto the same sibling — the skew.
The flood then offers a multiple of a *single* registry's service
capacity through those clients: below the LAN's aggregate capacity, but
far above the hot registry's. A strategy that spreads the load keeps the
deployment comfortably inside capacity; static order drowns one replica
while four idle. The sweep compares the four routing strategies on p99
discovery latency, in-window goodput, BUSY count, and failover churn.

Determinism: the flood schedule uses an experiment-local
``random.Random``; the adaptive strategies themselves are deterministic
functions of observed sim-time signals, so a fixed seed reproduces every
number — and every trace byte — exactly.
"""

from __future__ import annotations

import random

from repro.core.config import COOPERATION_REPLICATE_ADS, DiscoveryConfig
from repro.core.invariants import assert_invariants
from repro.core.retry import RetryPolicy
from repro.core.routing import (
    ROUTING_COOLDOWN_FAILOVER,
    ROUTING_LEAST_LOADED,
    ROUTING_NEAREST_LATENCY,
    ROUTING_STATIC,
    RoutingConfig,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.e17_overload import _renew_survival, _p99, shedding_policy
from repro.obs.report import build_capacity_report, write_report
from repro.semantics.generator import battlefield_ontology
from repro.workloads.queries import QueryWorkload
from repro.workloads.scenarios import ScenarioSpec, build_scenario

STRATEGIES = (
    ROUTING_STATIC,
    ROUTING_NEAREST_LATENCY,
    ROUTING_LEAST_LOADED,
    ROUTING_COOLDOWN_FAILOVER,
)
MULTIPLIERS = (2.0, 4.0)


def _config(routing: RoutingConfig) -> DiscoveryConfig:
    """The E17 fast-clock shedding deployment, plus a routing strategy."""
    return DiscoveryConfig(
        lease_duration=6.0,
        renew_fraction=0.5,
        purge_interval=1.5,
        default_ttl=1,
        aggregation_timeout=0.5,
        query_timeout=3.0,
        fallback_timeout=0.25,
        beacon_interval=2.0,
        signalling_interval=None,
        ping_interval=2.0,
        breaker_failure_threshold=3,
        breaker_reset_timeout=5.0,
        cooperation=COOPERATION_REPLICATE_ADS,
        antientropy_interval=1.0,
        admission=shedding_policy(),
        routing=routing,
        query_retry=RetryPolicy(base=0.2, factor=2.0, cap=2.0,
                                max_attempts=3, jitter=0.1),
        renew_retry=RetryPolicy(base=0.5, factor=2.0, cap=2.0,
                                max_attempts=3, jitter=0.1),
    )


def _build(routing: RoutingConfig, seed: int):
    spec = ScenarioSpec(
        name=f"e18-{routing.strategy}",
        lan_names=("lan-0", "lan-1"),
        ontology_factory=battlefield_ontology,
        registries_per_lan=1,
        services_per_lan=5,
        clients_per_lan=4,
        federation="chain",
        model_ids=("semantic",),
        seed=seed,
    )
    built = build_scenario(spec, config=_config(routing))
    # The idle replicas on the flooded LAN: the relief valves the routing
    # strategies are supposed to find. Seeding them with the gateway pulls
    # them into the federation so anti-entropy replicates the full
    # advertisement set onto each — any sibling can answer any query.
    gateway = min(
        r.node_id
        for r in built.system.registries
        if r.lan_name == "lan-0"
    )
    for _ in range(4):
        built.system.add_registry(
            "lan-0", model_ids=spec.model_ids, seeds=(gateway,)
        )
    return built


def _run_skewed(
    strategy: str,
    multiplier: float,
    *,
    seed: int,
    window: float = 10.0,
    routing_params: dict | None = None,
) -> dict:
    """Skewed flood: every lan-0 client starts on the same registry.

    Offers ``multiplier`` × a *single* registry's query capacity through
    the lan-0 clients only, all of which are force-seeded onto the
    lowest-id lan-0 registry after bootstrap — the pathological-but-
    realistic state left behind by a sibling restart or a partition heal.
    Returns the experiment row after the backlog has drained and the
    invariants have been checked.
    """
    routing = RoutingConfig(strategy=strategy, **(routing_params or {}))
    built = _build(routing, seed)
    system = built.system
    system.run(until=8.0)  # bootstrap: probes, publishes, first renews

    lan0_regs = sorted(
        (r for r in system.registries if r.lan_name == "lan-0"),
        key=lambda r: r.node_id,
    )
    hot = lan0_regs[0]
    clients = [c for c in system.clients if c.lan_name == "lan-0"]
    for client in clients:
        client.tracker.seed(hot.node_id)

    policy = system.config.admission
    rate = multiplier / policy.query_cost  # × one registry's capacity
    count = max(1, round(rate * window))
    interval = window / count

    workload = QueryWorkload.anchored(
        built.generator, built.profiles, min(count, 64), generalize=1
    )
    requests = workload.labelled
    rng = random.Random(seed)
    issued = []
    t0 = system.sim.now
    for i in range(count):
        item = requests[i % len(requests)]
        client = clients[rng.randrange(len(clients))]

        def issue(client=client, item=item) -> None:
            if not client.alive:
                return
            issued.append(client.discover(item.request, model_id="semantic"))

        system.sim.schedule_at(t0 + i * interval, issue)

    # -- window end: measure BEFORE the backlog drains -------------------
    system.run(until=t0 + window)
    renew_survival = _renew_survival(system)
    ok_in_window = sum(1 for call in issued if call.completed and call.hits)
    backlog = max(
        (r.admission.backlog_cost for r in system.registries), default=0.0
    )

    # -- drain: let every queue empty and every call resolve -------------
    system.run_for(30.0 + 2.0 * backlog)
    assert_invariants(system)

    latencies = [call.latency for call in issued if call.completed]
    succeeded = sum(1 for call in issued if call.completed and call.hits)
    return {
        "strategy": strategy,
        "load": multiplier,
        "offered_qps": rate,
        "issued": len(issued),
        "goodput_qps": ok_in_window / window,
        "p99_latency": _p99(latencies),
        "success_ratio": succeeded / len(issued) if issued else 1.0,
        "renew_survival": renew_survival,
        "busy": sum(c.busy_rejections for c in clients),
        "reroutes": sum(c.router.reroutes for c in clients),
        "failovers": sum(c.tracker.failovers for c in clients),
        "fallbacks": sum(c.fallback_queries for c in clients),
        "shed": sum(r.admission.shed for r in system.registries),
        "hot_shed": hot.admission.shed,
    }


def capacity_report(result: ExperimentResult, *, seed: int,
                    strategy: str = ROUTING_LEAST_LOADED) -> dict:
    """E18's sweep as a capacity-planning report (one routing strategy)."""
    rows = [row for row in result.rows if row["strategy"] == strategy]
    return build_capacity_report(
        "E18",
        seed=seed,
        points=[
            {
                "qps": row["offered_qps"],
                "success": row["success_ratio"],
                "latency": row["p99_latency"],
                "load": row["load"],
                "goodput_qps": row["goodput_qps"],
            }
            for row in rows
        ],
        shed=sum(row["shed"] for row in rows),
        issued=sum(row["issued"] for row in rows),
        notes=(f"routing strategy: {strategy} (skewed flood, one hot replica)",),
    )


def run(
    *,
    strategies: tuple[str, ...] = STRATEGIES,
    multipliers: tuple[float, ...] = MULTIPLIERS,
    window: float = 10.0,
    seed: int = 0,
    report_dir: str | None = None,
) -> ExperimentResult:
    """Sweep routing strategy × skewed load; the E18 result table.

    ``report_dir`` additionally writes the least-loaded sweep as a
    capacity-planning report (see :mod:`repro.obs.report`).
    """
    result = ExperimentResult(
        experiment="E18",
        description="adaptive load-aware routing: p99 and goodput under "
                    "skewed registry load",
    )
    for strategy in strategies:
        for multiplier in multipliers:
            result.add(**_run_skewed(strategy, multiplier, seed=seed,
                                     window=window))
    static_4x = result.single(strategy=ROUTING_STATIC, load=multipliers[-1])
    loaded_4x = result.single(strategy=ROUTING_LEAST_LOADED,
                              load=multipliers[-1])
    result.metrics["p99_at_peak"] = {
        "static": static_4x["p99_latency"],
        "least_loaded": loaded_4x["p99_latency"],
    }
    result.metrics["goodput_at_peak"] = {
        "static": static_4x["goodput_qps"],
        "least_loaded": loaded_4x["goodput_qps"],
    }
    result.note(
        "static order discovers the skew one BUSY round-trip at a time — "
        "every client pays retry_after waits before the tracker fails it "
        "over; the adaptive strategies read the piggybacked queue depths "
        "and BUSY cooldowns and move subsequent queries to the idle "
        "sibling immediately."
    )
    result.note(
        "least-loaded routes on the shallowest advertised queue, so the "
        "skewed flood is spread across all five lan-0 replicas within "
        "one response round-trip — lower p99 and higher in-window "
        "goodput than static at every overload multiplier."
    )
    if report_dir is not None:
        write_report(capacity_report(result, seed=seed), report_dir)
    return result


def trace_export(routing: RoutingConfig, *, seed: int = 0) -> str:
    """Byte-exact trace JSONL of a small routing-exercising run.

    A single-LAN deployment with two registries and a deliberately tiny
    admission queue, so a short query burst produces BUSY shedding and
    (under adaptive strategies) rerouting. Used by the routing smoke to
    assert that (a) any two same-seed runs are byte-identical under every
    strategy, and (b) *static* runs are byte-identical across differing
    routing parameters — the strategy's tunables must be completely inert
    until an adaptive strategy is selected.
    """
    from repro.core.admission import AdmissionPolicy
    from repro.workloads.queries import QueryDriver

    config = DiscoveryConfig(
        admission=AdmissionPolicy(query_cost=0.4, queue_limit=1,
                                  degrade_at=1.0, retry_after_base=0.1),
        routing=routing,
    )
    spec = ScenarioSpec(
        name="e18-trace",
        lan_names=("lan-0",),
        ontology_factory=battlefield_ontology,
        registries_per_lan=2,
        services_per_lan=2,
        clients_per_lan=1,
        federation="none",
        model_ids=("semantic",),
        seed=seed,
    )
    built = build_scenario(spec, config=config)
    system = built.system
    system.run(until=12.0)
    workload = QueryWorkload.anchored(built.generator, built.profiles, 4,
                                      generalize=1)
    driver = QueryDriver(system, workload, model_id="semantic",
                         interval=0.05, seed=seed)
    driver.play(settle=0.0, drain=10.0)
    return system.trace.export_jsonl()


def run_routing_smoke(*, seed: int = 0) -> dict:
    """The canonical skewed-load scenario for the tier-2 smoke gate.

    Returns the 4×-capacity static and least-loaded rows (the smoke
    asserts the adaptive strategy wins on p99 *and* goodput), a repeat
    least-loaded row (asserted identical — adaptive routing must stay
    deterministic), and three trace exports: default config, static with
    non-default routing parameters (asserted byte-identical to default —
    the pre-PR behavior contract), and least-loaded (asserted
    byte-identical across two same-seed runs).
    """
    static_4x = _run_skewed(ROUTING_STATIC, 4.0, seed=seed)
    loaded_4x = _run_skewed(ROUTING_LEAST_LOADED, 4.0, seed=seed)
    loaded_4x_repeat = _run_skewed(ROUTING_LEAST_LOADED, 4.0, seed=seed)
    return {
        "seed": seed,
        "static_4x": static_4x,
        "least_loaded_4x": loaded_4x,
        "least_loaded_4x_repeat": loaded_4x_repeat,
        "trace_default": trace_export(RoutingConfig(), seed=seed),
        "trace_static_tuned": trace_export(
            RoutingConfig(strategy=ROUTING_STATIC, ewma_alpha=0.42,
                          cooldown_base=1.25), seed=seed,
        ),
        "trace_least_loaded": trace_export(
            RoutingConfig(strategy=ROUTING_LEAST_LOADED), seed=seed,
        ),
        "trace_least_loaded_repeat": trace_export(
            RoutingConfig(strategy=ROUTING_LEAST_LOADED), seed=seed,
        ),
    }
