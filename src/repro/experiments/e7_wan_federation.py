"""E7 — Figures 2 & 4/§4.7/§4.9: WAN federation, cooperation, gateways.

Three sub-studies on the multi-LAN scenario:

* **Seeding shape** — "manual configuration, or seeding, is necessary at
  some point in time, connecting different registries from different LANs
  into a distributed registry network". We sweep ``none → chain → ring →
  mesh`` and measure cross-LAN recall (none ⇒ LAN-only discovery) and the
  WAN bytes each shape costs.
* **Cooperation strategy** — forward-queries (thick autonomous registries
  answering from their own content) vs replicate-advertisements (cluster
  style): query bytes shift to publish/renew bytes, and local answering
  removes WAN query latency — the push-vs-pull design choice §4.9 leaves
  open.
* **Gateway election** — with several registries per LAN, "only one node
  (or a predefined number of nodes) acts as the gateway to the WAN-level
  registry network": we toggle the election and count redundant WAN query
  traffic.
"""

from __future__ import annotations

from repro.core.config import (
    COOPERATION_FORWARD_QUERIES,
    COOPERATION_REPLICATE_ADS,
    DiscoveryConfig,
)
from repro.experiments.common import ExperimentResult, mean
from repro.metrics.bandwidth import TrafficWindow
from repro.metrics.retrieval import score_queries
from repro.semantics.generator import battlefield_ontology
from repro.workloads.queries import QueryDriver, QueryWorkload
from repro.workloads.scenarios import ScenarioSpec, build_scenario


def run(
    *,
    lans: int = 4,
    services_per_lan: int = 3,
    n_queries: int = 10,
    seed: int = 0,
) -> ExperimentResult:
    """Run all three federation sub-studies."""
    result = ExperimentResult(
        experiment="E7",
        description="WAN federation: seeding, cooperation, gateways (Figs. 2/4)",
    )
    for shape in ("none", "chain", "ring", "mesh"):
        row = _seeding_row(shape, lans, services_per_lan, n_queries, seed)
        result.metrics[f"query.e2e_latency[seeding/{shape}]"] = row.pop("_obs")
        result.add(**row)
    for cooperation in (COOPERATION_FORWARD_QUERIES, COOPERATION_REPLICATE_ADS):
        row = _cooperation_row(cooperation, lans, services_per_lan,
                               n_queries, seed)
        result.metrics[f"query.e2e_latency[cooperation/{cooperation}]"] = row.pop("_obs")
        result.add(**row)
    for election in (True, False):
        row = _gateway_row(election, lans, services_per_lan,
                           n_queries, seed)
        result.metrics[f"query.e2e_latency[gateway/{row['variant']}]"] = row.pop("_obs")
        result.add(**row)
    result.note(
        "shape=none keeps discovery LAN-local (recall ~ 1/LANs); any "
        "connected seeding restores full recall; replication trades query "
        "bytes for publish/renew bytes; gateway election removes "
        "redundant WAN forwarding when LANs host several registries."
    )
    return result


def _base_spec(name: str, lans: int, services_per_lan: int, seed: int,
               *, registries_per_lan: int = 1, federation: str = "ring") -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        lan_names=tuple(f"lan-{i}" for i in range(lans)),
        ontology_factory=battlefield_ontology,
        registries_per_lan=registries_per_lan,
        services_per_lan=services_per_lan,
        clients_per_lan=1,
        federation=federation,
        seed=seed,
    )


def _measure(built, n_queries: int, seed: int) -> dict:
    system = built.system
    system.run(until=12.0)
    workload = QueryWorkload.anchored(
        built.generator, built.profiles, n_queries, generalize=1
    )
    window = TrafficWindow.open(system.network.stats, system.sim.now)
    driver = QueryDriver(system, workload, interval=0.5, seed=seed)
    issued = driver.play(settle=0.0, drain=15.0)
    window.close(system.sim.now)
    completed = [q for q in issued if q.call.completed]
    scores = score_queries(issued)
    wan_delta = window.stats.snapshot()["bytes_wan"] - window.baseline["bytes_wan"]
    latency = system.metrics.histogram("query.e2e_latency").summary()
    return {
        "recall": scores.recall,
        "completed": len(completed),
        "query_bytes_per_q": window.query_bytes() / max(len(completed), 1),
        "maintenance_bytes": window.maintenance_bytes(),
        "wan_bytes": wan_delta,
        "mean_latency": mean(q.call.latency for q in completed),
        "p50_ms": latency["p50"] * 1000.0,
        "p95_ms": latency["p95"] * 1000.0,
        "p99_ms": latency["p99"] * 1000.0,
        "_obs": latency,
    }


def _seeding_row(shape: str, lans: int, services_per_lan: int,
                 n_queries: int, seed: int) -> dict:
    spec = _base_spec(f"e7-seed-{shape}", lans, services_per_lan, seed,
                      federation=shape)
    built = build_scenario(spec, config=DiscoveryConfig())
    row = {"study": "seeding", "variant": shape}
    row.update(_measure(built, n_queries, seed))
    return row


def _cooperation_row(cooperation: str, lans: int, services_per_lan: int,
                     n_queries: int, seed: int) -> dict:
    config = DiscoveryConfig(
        cooperation=cooperation,
        default_ttl=0 if cooperation == COOPERATION_REPLICATE_ADS else 4,
    )
    spec = _base_spec(f"e7-coop-{cooperation}", lans, services_per_lan, seed,
                      federation="ring")
    built = build_scenario(spec, config=config)
    row = {"study": "cooperation", "variant": cooperation}
    row.update(_measure(built, n_queries, seed))
    return row


def _gateway_row(election: bool, lans: int, services_per_lan: int,
                 n_queries: int, seed: int) -> dict:
    config = DiscoveryConfig(gateway_election=election)
    spec = _base_spec(
        f"e7-gw-{election}", lans, services_per_lan, seed,
        registries_per_lan=2, federation="none",
    )
    built = build_scenario(spec, config=config)
    # Every registry gets WAN links (full mesh over all of them): this is
    # the configuration where redundant WAN forwarding arises and gateway
    # election pays off.
    built.system.federate_mesh()
    row = {"study": "gateway", "variant": "elected" if election else "all-forward"}
    row.update(_measure(built, n_queries, seed))
    return row
