"""E4 — §4.8/§2: aliveness information vs stale advertisements.

"To prevent non-existent services from being discovered, aliveness
information should be used to delete old service advertisements from the
registry … Lack of such mechanisms is a major problem with today's
technologies for Web Service discovery" — naming UDDI (no leasing, relies
on active deregistration) and proxy-mode WS-Discovery.

Service nodes churn (crash permanently) while each architecture runs;
afterwards we measure

* registry staleness — fraction of stored advertisements naming dead
  services, and
* response staleness — fraction of hits returned to clients naming dead
  services ("should not return obsolete service descriptions").

Architectures: the paper's federated registries with leasing, the same
with leasing disabled (ablation isolating the mechanism), UDDI, and
WS-Discovery in ad hoc mode (no registry: always fresh by construction)
and managed mode (proxy without leasing: stale like UDDI).
"""

from __future__ import annotations

from repro.baselines.uddi import UddiSystem, uddi_config
from repro.baselines.wsdiscovery import WsDiscoverySystem, wsdiscovery_config
from repro.core.config import DiscoveryConfig
from repro.experiments.common import ExperimentResult
from repro.metrics.staleness import registry_staleness, response_staleness
from repro.semantics.generator import emergency_ontology
from repro.netsim.faults import FaultPlan
from repro.workloads.queries import QueryDriver, QueryWorkload
from repro.workloads.scenarios import ScenarioSpec, build_scenario

ARCHITECTURES = ("leasing", "no-leasing", "uddi", "wsd-proxy", "wsd-adhoc")

#: Short leases so expiry effects appear within a short run.
LEASE = 10.0


def _spec(arch: str, n_services: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"e4-{arch}",
        lan_names=("lan-0",),
        ontology_factory=emergency_ontology,
        registries_per_lan=1,
        services_per_lan=n_services,
        clients_per_lan=1,
        federation="none",
        seed=seed,
    )


def _build(arch: str, n_services: int, seed: int):
    spec = _spec(arch, n_services, seed)
    ontology = spec.ontology_factory()
    if arch == "leasing":
        return build_scenario(
            spec, config=DiscoveryConfig(lease_duration=LEASE, purge_interval=2.0)
        )
    if arch == "no-leasing":
        return build_scenario(
            spec,
            config=DiscoveryConfig(
                lease_duration=LEASE, purge_interval=2.0, leasing_enabled=False
            ),
        )
    if arch == "uddi":
        system = UddiSystem(
            seed=seed, ontology=ontology,
            config=uddi_config(lease_duration=LEASE),
        )
        system.add_lan(spec.lan_names[0])
        system.add_registry(spec.lan_names[0])
        return build_scenario(spec, system=system, with_registries=False)
    if arch == "wsd-proxy":
        system = WsDiscoverySystem(
            seed=seed, ontology=ontology,
            config=wsdiscovery_config(managed=True, lease_duration=LEASE),
        )
        system.add_lan(spec.lan_names[0])
        system.add_proxy(spec.lan_names[0])
        return build_scenario(spec, system=system, with_registries=False)
    if arch == "wsd-adhoc":
        system = WsDiscoverySystem(seed=seed, ontology=ontology)
        return build_scenario(spec, system=system, with_registries=False)
    raise ValueError(f"unknown architecture {arch!r}")


def run(
    *,
    n_services: int = 10,
    churn_rates: tuple[float, ...] = (0.05, 0.2),
    churn_window: float = 120.0,
    n_queries: int = 10,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep churn rate × architecture; report both staleness measures."""
    result = ExperimentResult(
        experiment="E4",
        description="stale advertisements under churn: leasing vs none (§4.8)",
    )
    for rate in churn_rates:
        for arch in ARCHITECTURES:
            result.add(**_run_one(arch, rate, n_services, churn_window,
                                  n_queries, seed))
    result.note(
        "leasing bounds staleness by lease duration; without it (uddi, "
        "wsd-proxy, no-leasing ablation) dead services linger forever."
    )
    return result


def _run_one(
    arch: str,
    rate: float,
    n_services: int,
    churn_window: float,
    n_queries: int,
    seed: int,
) -> dict:
    built = _build(arch, n_services, seed)
    system = built.system
    system.run(until=3.0)
    # A fixed fault schedule, not a live churn process: every architecture
    # in the comparison sees byte-identical crashes at identical instants
    # (the plan's randomness is consumed at build time from its own RNG).
    plan = FaultPlan.churn(
        [s.node_id for s in built.services], rate=rate, window=churn_window,
        seed=seed, mean_downtime=None, start=system.sim.now,
    )
    plan.apply(system)
    system.run_for(churn_window)
    # Let leases of the last victims expire before sampling.
    system.run_for(2 * LEASE)

    names = {s.node_id: s.profile.service_name for s in built.services}
    dead = frozenset(
        names[action.node_id]
        for action in plan.actions()
        if action.kind == "crash"
    )
    reg_staleness = registry_staleness(system)

    workload = QueryWorkload.anchored(
        built.generator, built.profiles, n_queries, generalize=1
    )
    driver = QueryDriver(system, workload, interval=0.5, seed=seed)
    issued = driver.play(settle=0.5, drain=15.0)
    dead_at_completion = {
        q.call.query_id: dead for q in issued if q.call.completed
    }
    resp_staleness = response_staleness(issued, dead_at_completion)
    return {
        "arch": arch,
        "churn_per_s": rate,
        "services_dead": len(dead),
        "services_total": n_services,
        "registry_staleness": reg_staleness,
        "response_staleness": resp_staleness,
    }
