"""E8 — §4.9: query forwarding strategies in the registry network.

"Several different strategies … can be used, including increasing the
reach of a query gradually in several rounds, random walks, or
broadcasting in the registry network."

The same ring-federated deployment runs the workload under each strategy.
Expected shape (and the paper's point about deterministic coverage):

* flooding — full recall, the most forwarded-query bytes;
* expanding ring — near-full recall, cheaper when matches are nearby, at
  extra latency from the rounds;
* random walk — the cheapest, but lossy: "all available advertisements
  should be queried in a deterministic way, not in a random way that does
  not guarantee discovery" — services are unique, so the walk's misses
  are real misses;
* informed — our instantiation of the paper's "summary information about
  the advertisements present in a registry": gossiped content summaries
  route each query directly to the registries that plausibly hold
  matches. Near-flooding recall at near-walk cost, paid for in summary
  gossip bytes and staleness risk.
"""

from __future__ import annotations

from repro.core.config import (
    DiscoveryConfig,
    STRATEGY_EXPANDING_RING,
    STRATEGY_FLOODING,
    STRATEGY_INFORMED,
    STRATEGY_RANDOM_WALK,
)
from repro.experiments.common import ExperimentResult, mean
from repro.metrics.bandwidth import TrafficWindow
from repro.metrics.retrieval import score_queries
from repro.semantics.generator import battlefield_ontology
from repro.workloads.queries import QueryDriver, QueryWorkload
from repro.workloads.scenarios import ScenarioSpec, build_scenario

STRATEGIES = (STRATEGY_FLOODING, STRATEGY_EXPANDING_RING,
              STRATEGY_RANDOM_WALK, STRATEGY_INFORMED)


def run(
    *,
    lans: int = 6,
    services_per_lan: int = 2,
    n_queries: int = 12,
    max_results: int | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Compare the three strategies on one ring-federated deployment."""
    result = ExperimentResult(
        experiment="E8",
        description="query forwarding strategies: flood vs ring vs walk (§4.9)",
    )
    for strategy in STRATEGIES:
        result.add(**_run_one(strategy, lans, services_per_lan, n_queries,
                              max_results, seed))
    result.note(
        "flooding gives deterministic full coverage; the walk is cheap "
        "but misses unique services — the paper's argument against "
        "random querying for service discovery."
    )
    return result


def _run_one(
    strategy: str,
    lans: int,
    services_per_lan: int,
    n_queries: int,
    max_results: int | None,
    seed: int,
) -> dict:
    config = DiscoveryConfig(
        strategy=strategy,
        default_ttl=lans,          # enough for the ring diameter
        ring_ttls=(0, 1, 2, lans),
        walk_length=lans,
        aggregation_timeout=0.5,
        signalling_interval=5.0,   # informed routing needs summary gossip
    )
    spec = ScenarioSpec(
        name=f"e8-{strategy}",
        lan_names=tuple(f"lan-{i}" for i in range(lans)),
        ontology_factory=battlefield_ontology,
        registries_per_lan=1,
        services_per_lan=services_per_lan,
        clients_per_lan=1,
        federation="ring",
        seed=seed,
    )
    built = build_scenario(spec, config=config)
    system = built.system
    # Long enough for content summaries to gossip across the ring's
    # diameter (one hop per signalling round).
    system.run(until=6.0 * lans)
    workload = QueryWorkload.anchored(
        built.generator, built.profiles, n_queries, generalize=1,
        max_results=max_results,
    )
    window = TrafficWindow.open(system.network.stats, system.sim.now)
    driver = QueryDriver(system, workload, interval=1.0, seed=seed)
    issued = driver.play(settle=0.0, drain=20.0)
    window.close(system.sim.now)
    completed = [q for q in issued if q.call.completed]
    scores = score_queries(issued)
    by_type = window.bytes_by_type()
    return {
        "strategy": strategy,
        "recall": scores.recall,
        "completed": len(completed),
        "query_bytes_per_q": window.query_bytes() / max(len(completed), 1),
        "forward_bytes": by_type.get("query-forward", 0) + by_type.get("walk", 0),
        "mean_latency": mean(q.call.latency for q in completed),
    }
