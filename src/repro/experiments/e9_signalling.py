"""E9 — §4.5/§4.9: registry signalling and failover cost.

"Once connected to a registry node that in turn is connected to other
registry nodes on the WAN, it is possible to use what we call registry
signalling to provide the client node with alternative registry nodes'
addresses. These addresses may be used in the event of failure, and may
help reduce the amount of tedious, manual reconfiguration of registry
endpoints."

One client's local registry is crashed mid-run. With signalling the
client's alternatives cache (primed by registry-list exchanges) lets it
fail over with a single unicast re-dispatch; without signalling it knows
nothing beyond its LAN, so after the timeout it can only multicast-probe
(finding nothing locally) and drop to the LAN fallback — losing all
remote services.

Reported: post-crash success and recall, attempts used, failover latency,
and probes sent.
"""

from __future__ import annotations

from repro.core.config import DiscoveryConfig
from repro.experiments.common import ExperimentResult, mean
from repro.metrics.retrieval import score_queries
from repro.semantics.generator import battlefield_ontology
from repro.workloads.queries import QueryDriver, QueryWorkload
from repro.workloads.scenarios import ScenarioSpec, build_scenario


def run(
    *,
    lans: int = 3,
    services_per_lan: int = 2,
    n_queries: int = 6,
    seed: int = 0,
) -> ExperimentResult:
    """Compare failover with and without registry signalling."""
    result = ExperimentResult(
        experiment="E9",
        description="failover via registry signalling vs re-bootstrap (§4.5)",
    )
    for signalling in (True, False):
        result.add(**_run_one(signalling, lans, services_per_lan, n_queries, seed))
    result.note(
        "with signalling, failover is one unicast re-dispatch to a cached "
        "alternative; without it the client re-probes its LAN, finds "
        "nothing, and degrades to LAN-local fallback."
    )
    return result


def _run_one(signalling: bool, lans: int, services_per_lan: int,
             n_queries: int, seed: int) -> dict:
    config = DiscoveryConfig(
        signalling_interval=10.0 if signalling else None,
        query_timeout=2.0,
        aggregation_timeout=0.3,  # keep dead-branch waits under the timeout
        lease_duration=15.0,      # orphaned services fail over within the run
        purge_interval=3.0,
    )
    spec = ScenarioSpec(
        name=f"e9-{signalling}",
        lan_names=tuple(f"lan-{i}" for i in range(lans)),
        ontology_factory=battlefield_ontology,
        registries_per_lan=1,
        services_per_lan=services_per_lan,
        clients_per_lan=1,
        federation="ring",
        seed=seed,
    )
    built = build_scenario(spec, config=config)
    system = built.system
    system.run(until=15.0)  # a signalling round must have happened

    client = system.clients[0]
    victim = client.tracker.current
    assert victim is not None
    probes_before = client.tracker.probes_sent
    system.network.node(victim).crash()
    system.run_for(0.5)

    workload = QueryWorkload.anchored(
        built.generator, built.profiles, n_queries, generalize=1
    )
    driver = QueryDriver(system, workload, interval=1.0, seed=seed)
    issued = driver.play(clients=[client], settle=0.0, drain=20.0)
    completed = [q for q in issued if q.call.completed]
    scores = score_queries(issued)
    return {
        "signalling": "on" if signalling else "off",
        "killed": victim,
        "completed": len(completed),
        "recall": scores.recall,
        "mean_attempts": mean(q.call.attempts for q in completed),
        "first_query_latency": completed[0].call.latency if completed else None,
        "probes_after_crash": client.tracker.probes_sent - probes_before,
        "failovers": client.tracker.failovers,
    }
