"""Ablation sweeps over the architecture's configurable parameters.

"Actually, these could even be made configurable on an individual
deployment basis. Other configurable parameters could be the interval
between registry beacons, the number of registry nodes to traverse for a
query, and the advertisement lease period."

Each sweep quantifies the trade the knob controls:

* **lease duration** — shorter leases drain stale advertisements faster
  but cost renewal bandwidth (staleness half-life vs renew bytes/s);
* **beacon interval** — denser beacons re-attach clients faster after a
  registry restart but cost multicast upkeep;
* **query TTL** — the "number of registry nodes to traverse": recall vs
  forwarded bytes on a chain of LANs;
* **compression ratio** — the binary-XML hook for large semantic payloads:
  publish bytes vs nothing (lossless in this model), showing where the
  paper's "not insignificant issue" goes away.
"""

from __future__ import annotations

from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.experiments.common import ExperimentResult, mean
from repro.metrics.bandwidth import TrafficWindow
from repro.metrics.retrieval import score_queries
from repro.metrics.staleness import registry_staleness
from repro.netsim.messages import SizeModel
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest
from repro.workloads.churn import ServiceChurn
from repro.workloads.queries import QueryDriver, QueryWorkload
from repro.workloads.scenarios import ScenarioSpec, build_scenario

REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])


def _radar(name: str) -> ServiceProfile:
    return ServiceProfile.build(name, "ncw:RadarService",
                                outputs=["ncw:AirTrack"])


# -- lease duration -----------------------------------------------------------


def lease_duration_sweep(
    *,
    durations: tuple[float, ...] = (5.0, 20.0, 60.0),
    n_services: int = 8,
    churn_rate: float = 0.1,
    window: float = 120.0,
    seed: int = 0,
) -> ExperimentResult:
    """Staleness vs renewal bandwidth as the lease period varies."""
    result = ExperimentResult(
        experiment="A-lease",
        description="lease duration: staleness drain vs renew bandwidth",
    )
    for duration in durations:
        config = DiscoveryConfig(lease_duration=duration,
                                 purge_interval=duration / 5.0)
        spec = ScenarioSpec(
            name=f"a-lease-{duration}",
            lan_names=("lan-0",),
            ontology_factory=battlefield_ontology,
            services_per_lan=n_services,
            clients_per_lan=1,
            federation="none",
            seed=seed,
        )
        built = build_scenario(spec, config=config)
        system = built.system
        system.run(until=3.0)
        traffic = TrafficWindow.open(system.network.stats, system.sim.now)
        churn = ServiceChurn(system, rate=churn_rate, permanent=True).start()
        system.run_for(window)
        churn.stop()
        report = traffic.close(system.sim.now)
        renew_bytes = traffic.bytes_by_type().get("renew", 0) + \
            traffic.bytes_by_type().get("renew-ack", 0)
        result.add(
            lease_s=duration,
            services_dead=len(churn.dead_service_names()),
            staleness_at_end=registry_staleness(system),
            renew_bytes_per_s=renew_bytes / report["duration"],
        )
    result.note(
        "staleness at any instant is bounded by (churn rate x lease); "
        "renewal traffic scales as 1/lease — the deployment-level trade."
    )
    return result


# -- beacon interval ------------------------------------------------------------


def beacon_interval_sweep(
    *,
    intervals: tuple[float, ...] = (1.0, 5.0, 15.0),
    seed: int = 0,
) -> ExperimentResult:
    """Client re-attachment latency after registry restart vs upkeep bytes."""
    result = ExperimentResult(
        experiment="A-beacon",
        description="beacon interval: recovery latency vs multicast upkeep",
    )
    for interval in intervals:
        config = DiscoveryConfig(
            beacon_interval=interval, lease_duration=10.0, purge_interval=2.0,
            query_timeout=2.0,
        )
        system = DiscoverySystem(seed=seed, ontology=battlefield_ontology(),
                                 config=config)
        system.add_lan("lan-0")
        registry = system.add_registry("lan-0")
        system.add_service("lan-0", _radar("radar"))
        client = system.add_client("lan-0")
        system.run(until=5.0)
        upkeep = TrafficWindow.open(system.network.stats, system.sim.now)
        system.run_for(30.0)
        upkeep_report = upkeep.close(system.sim.now)

        registry.crash()
        system.discover(client, REQUEST, timeout=30.0)  # drops to fallback
        crash_detected_at = system.sim.now
        registry.restart()
        restarted_at = system.sim.now
        # Wait until the client re-attaches (beacon-driven).
        while client.tracker.current != registry.node_id and \
                system.sim.now < restarted_at + 10 * interval:
            if not system.sim.step():
                break
        result.add(
            beacon_s=interval,
            upkeep_bytes_per_s=upkeep_report["bytes_per_second"],
            reattach_latency=system.sim.now - restarted_at,
            fallback_used=crash_detected_at > 0,
        )
    result.note(
        "re-attachment waits for the next beacon (~interval/1); upkeep "
        "multicast bytes scale with 1/interval."
    )
    return result


# -- query TTL ---------------------------------------------------------------------


def ttl_sweep(
    *,
    lans: int = 5,
    ttls: tuple[int, ...] = (0, 1, 2, 4),
    n_queries: int = 8,
    seed: int = 0,
) -> ExperimentResult:
    """Recall vs forwarded bytes as the traversal bound varies (chain)."""
    result = ExperimentResult(
        experiment="A-ttl",
        description="query TTL: reach vs forwarded bytes on a chain",
    )
    for ttl in ttls:
        config = DiscoveryConfig(default_ttl=ttl, aggregation_timeout=0.3,
                                 query_timeout=max(2.0, 0.4 * (ttl + 2)))
        spec = ScenarioSpec(
            name=f"a-ttl-{ttl}",
            lan_names=tuple(f"lan-{i}" for i in range(lans)),
            ontology_factory=battlefield_ontology,
            services_per_lan=2,
            clients_per_lan=1,
            federation="chain",
            seed=seed,
        )
        built = build_scenario(spec, config=config)
        system = built.system
        system.run(until=10.0)
        workload = QueryWorkload.anchored(built.generator, built.profiles,
                                          n_queries, generalize=1)
        window = TrafficWindow.open(system.network.stats, system.sim.now)
        driver = QueryDriver(system, workload, interval=0.5, seed=seed)
        issued = driver.play(settle=0.0, drain=15.0,
                             clients=[built.clients[0]])
        window.close(system.sim.now)
        scores = score_queries(issued)
        result.add(
            ttl=ttl,
            recall=scores.recall,
            forward_bytes=window.bytes_by_type().get("query-forward", 0),
            mean_latency=mean(
                q.call.latency for q in issued if q.call.completed
            ),
        )
    result.note(
        "recall saturates once the TTL covers the chain from the querying "
        "client; every extra hop past that is pure forwarded-bytes cost."
    )
    return result


# -- compression ---------------------------------------------------------------------


def compression_sweep(
    *,
    ratios: tuple[float, ...] = (1.0, 0.5, 0.25, 0.1),
    n_services: int = 6,
    seed: int = 0,
) -> ExperimentResult:
    """Publish/response bytes as semantic payloads are compressed."""
    result = ExperimentResult(
        experiment="A-zip",
        description="compression (binary-XML hook): wire bytes vs ratio",
    )
    for ratio in ratios:
        config = DiscoveryConfig(lease_duration=30.0)
        system = DiscoverySystem(
            seed=seed, ontology=battlefield_ontology(), config=config,
            size_model=SizeModel(compression_ratio=ratio),
        )
        system.add_lan("lan-0")
        system.add_registry("lan-0")
        for i in range(n_services):
            system.add_service("lan-0", _radar(f"radar-{i}"),
                               model_ids=("semantic",))
        client = system.add_client("lan-0", model_ids=("semantic",))
        system.run(until=3.0)
        call = system.discover(client, REQUEST)
        stats = system.network.stats
        publishes = stats.by_type_count.get("publish", 1)
        result.add(
            ratio=ratio,
            publish_msg_bytes=stats.by_type_bytes.get("publish", 0) / publishes,
            response_bytes=call.response_bytes,
            hits=len(call.hits),
        )
    result.note(
        "payload bytes scale linearly with the ratio; the constant "
        "envelope dominates below ~0.25 — the point of diminishing "
        "returns for the paper's compression hook."
    )
    return result


# -- narrow-band links ------------------------------------------------------------


def narrowband_sweep(
    *,
    bandwidths: tuple[float | None, ...] = (None, 256_000.0, 64_000.0),
    seed: int = 0,
) -> ExperimentResult:
    """Query latency per description model on capacity-limited LANs.

    "Especially in wireless environments, it is important to use
    bandwidth efficiently" — on a shared narrow-band medium the large
    semantic payloads turn directly into transmission latency, and the
    binary-XML/compression hook earns its keep.
    """
    result = ExperimentResult(
        experiment="A-band",
        description="narrow-band LANs: query latency per description model",
    )
    cases = [("uri", 1.0), ("semantic", 1.0), ("semantic", 0.25)]
    for bandwidth in bandwidths:
        for model_id, ratio in cases:
            system = DiscoverySystem(
                seed=seed, ontology=battlefield_ontology(),
                config=DiscoveryConfig(),
                size_model=SizeModel(compression_ratio=ratio),
            )
            system.network.add_lan("radio", bandwidth_bps=bandwidth)
            system.add_registry("radio", model_ids=(model_id,))
            system.add_service("radio", _radar("radar"),
                               model_ids=(model_id,))
            client = system.add_client("radio", model_ids=(model_id,))
            system.run(until=3.0)
            call = system.discover(
                client, ServiceRequest.build("ncw:RadarService"),
                model_id=model_id, timeout=60.0,
            )
            result.add(
                bandwidth_kbps=(bandwidth / 1000.0) if bandwidth else "inf",
                model=f"{model_id}" + ("+zip" if ratio < 1.0 else ""),
                query_latency_ms=call.latency * 1000.0,
                hits=len(call.hits),
            )
    result.note(
        "on a 64 kbps medium the semantic payloads dominate latency; "
        "4:1 compression recovers most of the gap to URI discovery."
    )
    return result


def run(*, seed: int = 0) -> ExperimentResult:
    """All five sweeps concatenated into one table (for the bench)."""
    combined = ExperimentResult(
        experiment="A-all",
        description="design-knob ablations (lease/beacon/ttl/zip/bandwidth)",
    )
    for sweep in (lease_duration_sweep, beacon_interval_sweep, ttl_sweep,
                  compression_sweep, narrowband_sweep):
        part = sweep(seed=seed)
        for row in part.rows:
            combined.add(sweep=part.experiment, **row)
        combined.notes.extend(f"{part.experiment}: {n}" for n in part.notes)
    return combined
