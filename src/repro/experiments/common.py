"""Shared experiment plumbing: result tables and small helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import ExperimentError


@dataclass
class ExperimentResult:
    """A small result table with aligned-text rendering.

    ``rows`` are dicts sharing the same keys; ``notes`` carries free-form
    observations the EXPERIMENTS.md write-up quotes.
    """

    experiment: str
    description: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Named metric summaries (histogram ``summary()`` dicts, counter
    #: maps) the experiment attaches — rendered as a block after the
    #: table and dumped into ``benchmarks/results/`` by the benches.
    metrics: dict[str, Any] = field(default_factory=dict)

    def add(self, **row: Any) -> None:
        """Append one result row."""
        self.rows.append(row)

    def note(self, text: str) -> None:
        """Record a free-form observation."""
        self.notes.append(text)

    def columns(self) -> list[str]:
        """Column names in first-seen order across all rows."""
        seen: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def column(self, name: str) -> list[Any]:
        """One column as a list (missing cells become ``None``)."""
        return [row.get(name) for row in self.rows]

    def where(self, **criteria: Any) -> list[dict[str, Any]]:
        """Rows matching all equality criteria."""
        return [
            row for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]

    def single(self, **criteria: Any) -> dict[str, Any]:
        """Exactly one row matching the criteria (raises otherwise)."""
        matches = self.where(**criteria)
        if len(matches) != 1:
            raise ExperimentError(
                f"{self.experiment}: expected 1 row for {criteria}, found {len(matches)}"
            )
        return matches[0]

    def table(self) -> str:
        """Aligned plain-text rendering (what the benches print)."""
        columns = self.columns()
        if not columns:
            return f"{self.experiment}: (no rows)"
        rendered = [[_fmt(row.get(col)) for col in columns] for row in self.rows]
        widths = [
            max(len(col), *(len(line[i]) for line in rendered)) if rendered else len(col)
            for i, col in enumerate(columns)
        ]
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
        divider = "  ".join("-" * widths[i] for i in range(len(columns)))
        body = "\n".join(
            "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
            for line in rendered
        )
        parts = [f"== {self.experiment}: {self.description} ==", header, divider, body]
        if self.metrics:
            parts.append("")
            parts.append("metrics:")
            for name in sorted(self.metrics):
                value = self.metrics[name]
                if isinstance(value, dict):
                    inner = "  ".join(
                        f"{k}={_fmt(value[k])}" for k in sorted(value)
                    )
                    parts.append(f"  {name}: {inner}")
                else:
                    parts.append(f"  {name}: {_fmt(value)}")
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def to_json(self) -> dict[str, Any]:
        """A JSON-serializable dump (``repro experiment --json``)."""
        return {
            "experiment": self.experiment,
            "description": self.description,
            "rows": self.rows,
            "metrics": self.metrics,
            "notes": self.notes,
        }

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.table()


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for empty input."""
    items = list(values)
    return sum(items) / len(items) if items else 0.0


def stdev(values: Iterable[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two values."""
    items = list(values)
    if len(items) < 2:
        return 0.0
    mu = mean(items)
    return (sum((x - mu) ** 2 for x in items) / len(items)) ** 0.5


def repeat_runs(
    run_fn: Callable[..., ExperimentResult],
    *,
    seeds: Iterable[int],
    group_by: list[str],
    **kwargs: Any,
) -> ExperimentResult:
    """Run an experiment across several seeds and aggregate.

    Rows are grouped by the key columns in ``group_by``; every numeric
    column becomes ``<name>`` (the cross-seed mean) plus ``<name>_sd``.
    Non-numeric, non-key columns are dropped. This is how single-seed
    experiment shapes are checked for robustness — see
    ``benchmarks/test_repeatability.py``.
    """
    seed_list = list(seeds)
    if not seed_list:
        raise ExperimentError("repeat_runs needs at least one seed")
    per_seed = [run_fn(seed=seed, **kwargs) for seed in seed_list]
    base = per_seed[0]
    grouped: dict[tuple, list[dict[str, Any]]] = {}
    for result in per_seed:
        for row in result.rows:
            key = tuple(row.get(column) for column in group_by)
            grouped.setdefault(key, []).append(row)

    aggregated = ExperimentResult(
        experiment=f"{base.experiment}xN",
        description=f"{base.description} (mean of {len(seed_list)} seeds)",
    )
    for key, rows in grouped.items():
        out: dict[str, Any] = dict(zip(group_by, key))
        numeric_columns = [
            column for column in rows[0]
            if column not in group_by
            and isinstance(rows[0][column], (int, float))
            and not isinstance(rows[0][column], bool)
        ]
        for column in numeric_columns:
            values = [float(row[column]) for row in rows if column in row]
            out[column] = mean(values)
            out[f"{column}_sd"] = stdev(values)
        out["n"] = len(rows)
        aggregated.add(**out)
    return aggregated


def bar_chart(
    result: ExperimentResult,
    *,
    label: str,
    value: str,
    width: int = 40,
) -> str:
    """Render one numeric column as an ASCII horizontal bar chart.

    The executable stand-in for the figures a paper would plot::

        arch=centralized  ████████████████████████████████  292590
        arch=distributed  ██████████████████████████        240127
    """
    rows = [row for row in result.rows if isinstance(
        row.get(value), (int, float))]
    if not rows:
        return f"{result.experiment}: no numeric values in {value!r}"
    peak = max(abs(float(row[value])) for row in rows) or 1.0
    labels = [f"{label}={row.get(label)}" for row in rows]
    label_width = max(len(text) for text in labels)
    lines = [f"{result.experiment}: {value}"]
    for text, row in zip(labels, rows):
        magnitude = abs(float(row[value]))
        bar = "#" * max(1, round(width * magnitude / peak))
        lines.append(f"{text.ljust(label_width)}  {bar}  {_fmt(row[value])}")
    return "\n".join(lines)
