"""E11 — survivability metrics of the three topologies (MILCOM §refs).

The companion paper grounds the hybrid-topology recommendation in
complex-network results: "properties such as low characteristic path
length, good clustering … and robustness to random and targeted failure
are all important for survivability", and "the characteristic path length
should be low … with only a few nodes that have long-range connections.
This matches quite well with the hybrid topology."

We build the three topologies over the *same* node population (6 LANs of
services and clients), take the discovery graph (federation + attachment
edges; LAN cliques for the registry-less case), and compute:

* characteristic path length and clustering coefficient,
* the survivability curve — largest-component fraction as nodes are
  removed uniformly at random vs highest-degree-first (the Albert/Jeong/
  Barabási random-vs-targeted contrast the paper cites).
"""

from __future__ import annotations

from repro.core.config import DiscoveryConfig
from repro.core.invariants import assert_invariants
from repro.experiments.common import ExperimentResult
from repro.metrics.topology import (
    characteristic_path_length,
    clustering_coefficient,
    discovery_graph,
    largest_component_fraction,
    reachability_under_removal,
)
from repro.netsim.failures import AttackSchedule
from repro.semantics.generator import battlefield_ontology
from repro.workloads.scenarios import ScenarioSpec, build_scenario

ARCHITECTURES = ("decentralized", "centralized", "distributed")


def run(
    *,
    lans: int = 6,
    services_per_lan: int = 3,
    removal_fractions: tuple[float, ...] = (0.1, 0.3),
    seed: int = 0,
) -> ExperimentResult:
    """Graph metrics + random/targeted removal curves per topology."""
    result = ExperimentResult(
        experiment="E11",
        description="survivability: path length, clustering, attacks (MILCOM)",
    )
    for arch in ARCHITECTURES:
        graph = _build_graph(arch, lans, services_per_lan, seed)
        base = {
            "arch": arch,
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "path_length": characteristic_path_length(graph),
            "clustering": clustering_coefficient(graph),
            "connected_frac": largest_component_fraction(graph),
        }
        for strategy in ("random", "targeted"):
            order = _removal_order(graph, strategy, seed)
            curve = reachability_under_removal(graph, order)
            row = dict(base)
            row["attack"] = strategy
            for fraction in removal_fractions:
                index = max(int(fraction * len(order)) - 1, 0)
                row[f"reach@{int(fraction * 100)}%"] = (
                    curve[index] if curve else 0.0
                )
            result.add(**row)
    result.note(
        "the centralized star dies with its hub under targeted attack; "
        "the distributed super-peer graph keeps short paths while "
        "degrading gradually; registry-less LAN cliques never span the WAN."
    )
    return result


def _build_graph(arch: str, lans: int, services_per_lan: int, seed: int):
    registries = {"decentralized": 0, "centralized": 1, "distributed": 1}[arch]
    spec = ScenarioSpec(
        name=f"e11-{arch}",
        lan_names=tuple(f"lan-{i}" for i in range(lans)),
        ontology_factory=battlefield_ontology,
        registries_per_lan=registries,
        services_per_lan=services_per_lan,
        clients_per_lan=1,
        federation="mesh" if arch == "distributed" else "none",
        seed=seed,
    )
    if arch == "centralized":
        # One registry total: place it on lan-0 and seed everyone to it.
        spec = ScenarioSpec(
            name=spec.name,
            lan_names=spec.lan_names,
            ontology_factory=spec.ontology_factory,
            registries_per_lan=0,
            services_per_lan=services_per_lan,
            clients_per_lan=1,
            federation="none",
            seed=seed,
        )
        built = build_scenario(spec, config=DiscoveryConfig(),
                               with_registries=False)
        system = built.system
        hub = system.add_registry("lan-0")
        for node in list(system.services) + list(system.clients):
            system.sim.schedule(0.5, lambda n=node: n.tracker.seed(hub.node_id))
        system.run(until=12.0)
        return discovery_graph(system)
    built = build_scenario(spec, config=DiscoveryConfig(),
                           with_registries=registries > 0)
    built.system.run(until=12.0)
    return discovery_graph(built.system)


def run_fault_scenario(
    *,
    lans: int = 4,
    services_per_lan: int = 2,
    seed: int = 0,
) -> dict:
    """The canonical crash + partition + loss-burst scenario on the
    distributed (super-peer) topology, measured as a survivability story.

    Snapshots the discovery graph before the faults, at the depth of the
    partition window, and after heal + recovery, then sweeps the
    bookkeeping invariants. Deterministic under a fixed seed.
    """
    from repro.experiments.e3_robustness import canonical_fault_plan

    spec = ScenarioSpec(
        name="e11-fault-scenario",
        lan_names=tuple(f"lan-{i}" for i in range(lans)),
        ontology_factory=battlefield_ontology,
        registries_per_lan=1,
        services_per_lan=services_per_lan,
        clients_per_lan=1,
        federation="mesh",
        seed=seed,
    )
    built = build_scenario(spec, config=DiscoveryConfig())
    system = built.system
    system.run(until=12.0)
    before = largest_component_fraction(discovery_graph(system))

    plan = canonical_fault_plan(system)
    applied = plan.apply(system)
    system.run_for(10.0)  # inside the partition + loss window
    during = largest_component_fraction(discovery_graph(system))
    system.run_for(2 * system.config.lease_duration)  # heal + recover
    after = largest_component_fraction(discovery_graph(system))
    assert_invariants(system)

    return {
        "faults": applied.counts(),
        "traffic": system.traffic(),
        "connected_before": before,
        "connected_during": during,
        "connected_after": after,
        "recoveries": dict(system.network.stats.recoveries),
    }


def _removal_order(graph, strategy: str, seed: int) -> list[str]:
    """Removal order without needing a live simulator."""
    import random

    nodes = sorted(graph.nodes)
    if strategy == "random":
        rng = random.Random(seed)
        rng.shuffle(nodes)
        return nodes
    return sorted(nodes, key=lambda n: (-graph.degree(n), n))
