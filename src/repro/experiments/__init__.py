"""Experiment runners: the paper's figures and claims as executable code.

Each module ``eN_*`` exposes a ``run(...)`` function returning an
:class:`~repro.experiments.common.ExperimentResult` (a small typed table).
The mapping from experiments to paper anchors is in DESIGN.md §3; the
measured outcomes are recorded in EXPERIMENTS.md. Benchmarks under
``benchmarks/`` regenerate every one of them.
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
