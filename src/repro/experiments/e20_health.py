"""E20 — runtime health under injected faults: do the alarms fire?

E17–E19 measure how the *protocols* behave under overload, crashes, and
partitions. E20 turns the camera around and validates the **runtime
health layer** itself (:mod:`repro.obs.health`): a three-LAN replicating
deployment runs with health monitoring enabled while three distinct
fault classes are injected in sequence, and the experiment checks that
each one raises at least one *correct* alarm — the right detector, in
the right time window — with a flight-recorder dump attached:

* **overload flood** (3× one registry's capacity for 6 s) — the
  admission queue fills and sheds, so the ``shed-step`` watchdog (and
  usually ``queue-growth`` and an SLO breach) must trip;
* **registry crash** (one registry fail-stops for 14 s) — its
  anti-entropy rounds go silent (``antientropy-stale``) and the crash
  itself captures a flight-recorder dump (the surviving peers keep the
  replicas it left behind alive by reconciling with each other, so no
  expiry spike — the partition covers that detector);
* **WAN partition** (lan-0 cut off for 14 s) — replica lease refreshes
  stop crossing the WAN, so both sides purge the far side's replicas:
  another ``lease-expiry-spike``.

The control run — same deployment, same probe workload, **no faults** —
must raise *zero* alarms: a health layer that cries wolf on a healthy
system is worse than none. And because the detectors read only sim-time,
metrics, and protocol feeds, two same-seed faulted runs must produce
byte-identical alarm timelines and dumps, while two *health-disabled*
runs of the very same faulted scenario must stay byte-identical at the
trace level — the inert-by-default contract.
"""

from __future__ import annotations

import json

from repro.core.admission import AdmissionPolicy
from repro.core.config import COOPERATION_REPLICATE_ADS, DiscoveryConfig
from repro.core.invariants import assert_invariants
from repro.core.system import DiscoverySystem
from repro.experiments.common import ExperimentResult
from repro.netsim.faults import FaultPlan
from repro.obs.health import HealthConfig
from repro.obs.report import build_capacity_report, write_report
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])

#: Fault schedule (sim-seconds). The phases are spaced so every
#: detector's rising edge clears between faults: the lease window (10 s)
#: empties before the partition repeats the expiry spike.
FLOOD_START, FLOOD_END = 10.0, 16.0
FLOOD_QPS = 30.0  # 3x one registry's 10 q/s admission capacity
CRASH_AT, RESTART_AT = 40.0, 54.0
PARTITION_AT, HEAL_AT = 62.0, 76.0
END_AT = 90.0

#: ``(phase, window_start, window_end, alarms that must fire inside)``.
#: Windows extend past the fault to cover detection lag (watchdog tick,
#: staleness bound, lease expiry + purge).
PHASES = (
    ("overload-flood", FLOOD_START, FLOOD_END + 6.0, ("shed-step",)),
    ("registry-crash", CRASH_AT, PARTITION_AT, ("antientropy-stale",)),
    ("wan-partition", PARTITION_AT, HEAL_AT + 6.0, ("lease-expiry-spike",)),
)


def health_config() -> HealthConfig:
    """E20's health tuning: fast-clock bounds matched to the deployment.

    The deployment runs anti-entropy every 2 s and 6 s leases, so the
    default 30 s staleness bound would never fire inside the scenario;
    8 s (four missed rounds) is the matched bound. Queue depth alarms at
    a sustained mean of 6 (the flood drives the 32-slot queue to full).
    """
    return HealthConfig(
        enabled=True,
        slow_window=30.0,
        queue_depth_threshold=6.0,
        antientropy_stale_after=8.0,
    )


def _config(health: HealthConfig) -> DiscoveryConfig:
    """Fast-clock replicating deployment with E17's shedding admission."""
    return DiscoveryConfig(
        cooperation=COOPERATION_REPLICATE_ADS,
        default_ttl=0,
        antientropy_interval=2.0,
        lease_duration=6.0,
        renew_fraction=0.5,
        purge_interval=1.0,
        query_timeout=2.0,
        aggregation_timeout=0.3,
        fallback_enabled=False,
        beacon_interval=2.0,
        ping_interval=2.0,
        # Keep federation links nailed up through the 14 s outages: the
        # scenario tests the *health* layer's detectors, not neighbor
        # eviction (E13 covers that).
        ping_failure_threshold=10,
        admission=AdmissionPolicy(
            queue_limit=32,
            prioritized=True,
            degrade_at=0.5,
            retry_after_base=0.1,
            query_cost=0.1,
            forward_cost=0.05,
            publish_cost=0.02,
            renew_cost=0.01,
            sync_cost=0.01,
        ),
        health=health,
    )


def _build(seed: int, health: HealthConfig):
    """Three replicating LANs, one registry each, two clients on lan-0."""
    system = DiscoverySystem(
        seed=seed, ontology=battlefield_ontology(), config=_config(health)
    )
    for i in range(3):
        system.add_lan(f"lan-{i}")
        system.add_registry(f"lan-{i}")
    system.federate_ring()
    for i in range(3):
        for j in range(2):
            system.add_service(f"lan-{i}", ServiceProfile.build(
                f"radar-{i}-{j}", "ncw:RadarService", outputs=["ncw:AirTrack"]
            ))
    clients = [system.add_client("lan-0"), system.add_client("lan-0")]
    return system, clients


def _schedule_probes(system, clients) -> list:
    """One background query per second: the SLO stream's steady feed."""
    calls: list = []
    t, i = 5.0, 0
    while t < END_AT - 2.0:
        client = clients[i % len(clients)]

        def probe(client=client) -> None:
            if client.alive:
                calls.append(client.discover(REQUEST, model_id="semantic"))

        system.sim.schedule_at(t, probe)
        t += 1.0
        i += 1
    return calls


def _schedule_flood(system, clients) -> list:
    """The overload fault: 3x capacity for the flood window, round-robin."""
    calls: list = []
    count = int(FLOOD_QPS * (FLOOD_END - FLOOD_START))
    interval = (FLOOD_END - FLOOD_START) / count
    for i in range(count):
        client = clients[i % len(clients)]

        def issue(client=client) -> None:
            if client.alive:
                calls.append(client.discover(REQUEST, model_id="semantic"))

        system.sim.schedule_at(FLOOD_START + i * interval, issue)
    return calls


def _fault_plan(registry_id: str) -> FaultPlan:
    return (
        FaultPlan()
        .crash(CRASH_AT, registry_id)
        .restart(RESTART_AT, registry_id)
        .partition(PARTITION_AT, [["lan-0"], ["lan-1", "lan-2"]])
        .heal(HEAL_AT)
    )


def _run_scenario(*, seed: int, faulted: bool, health: HealthConfig) -> dict:
    """One full run; returns everything the smoke and report need."""
    system, clients = _build(seed, health)
    probes = _schedule_probes(system, clients)
    flood = _schedule_flood(system, clients) if faulted else []
    applied = None
    if faulted:
        applied = _fault_plan(system.registries[1].node_id).apply(system)
    system.run(until=END_AT)
    system.run_for(8.0)  # drain: every call resolved, every queue empty
    assert_invariants(system)

    monitor = system.health
    timeline = monitor.alarm_timeline()
    completed = [c for c in probes if c.completed]
    ok = [c for c in completed if c.hits]
    latencies = sorted(c.latency for c in ok)
    p95 = latencies[min(len(latencies) - 1,
                        int(0.95 * len(latencies)))] if latencies else 0.0
    return {
        "alarms": timeline,
        "alarm_names": sorted({a["alarm"] for a in timeline}),
        "alarm_json": json.dumps(timeline, sort_keys=True,
                                 separators=(",", ":")),
        "dumps": [(d.reason, d.node, d.time, d.records)
                  for d in monitor.dumps],
        "dump_jsonl": "\n".join(d.jsonl for d in monitor.dumps),
        "snapshot": monitor.snapshot(),
        "trace": system.sim.trace.export_jsonl(),
        "probe_stats": {
            "issued": len(probes),
            "ok": len(ok),
            "success": len(ok) / len(probes) if probes else 1.0,
            "p95_latency": p95,
            "flood_issued": len(flood),
        },
        "faults": dict(applied.counts()) if applied is not None else {},
    }


def _phase_alarms(timeline: list[dict]) -> dict[str, list[str]]:
    """Alarm names observed inside each phase's detection window."""
    return {
        name: sorted({a["alarm"] for a in timeline if start <= a["t"] < end})
        for name, start, end, _expected in PHASES
    }


def capacity_report(result: ExperimentResult, *, seed: int,
                    monitor_snapshot: dict | None = None) -> dict:
    """E20 as a health-posture report: probe SLO per run, plus alarms."""
    points = [
        {
            "qps": 1.0,  # the background probe cadence
            "success": row["probe_success"],
            "latency": row["probe_p95"],
            "run": row["run"],
            "alarms": row["alarms"],
        }
        for row in result.rows if row.get("run") in ("clean", "faulted")
    ]
    report = build_capacity_report(
        "E20",
        seed=seed,
        points=points,
        notes=(
            "success/latency are the 1 q/s background probe stream; the "
            "faulted run absorbs a flood, a crash, and a partition",
        ),
    )
    if monitor_snapshot is not None:
        report["alarms"] = monitor_snapshot["alarms"]
        report["slo"] = monitor_snapshot["slo"]
        report["dumps"] = monitor_snapshot["dumps"]
    return report


def run(*, seed: int = 0, report_dir: str | None = None) -> ExperimentResult:
    """Clean vs faulted health-enabled runs; the E20 result table.

    ``report_dir`` additionally writes the faulted run's health posture
    as a capacity report (see :mod:`repro.obs.report`).
    """
    result = ExperimentResult(
        experiment="E20",
        description="runtime health under faults: alarm precision per "
                    "fault class, zero false positives clean",
    )
    clean = _run_scenario(seed=seed, faulted=False, health=health_config())
    faulted = _run_scenario(seed=seed, faulted=True, health=health_config())
    phases = _phase_alarms(faulted["alarms"])

    result.add(
        run="clean", phase="-", alarms=len(clean["alarms"]),
        alarm_names=",".join(clean["alarm_names"]) or "-",
        dumps=len(clean["dumps"]),
        probe_success=clean["probe_stats"]["success"],
        probe_p95=clean["probe_stats"]["p95_latency"],
        detected=len(clean["alarms"]) == 0,
    )
    for name, start, end, expected in PHASES:
        observed = phases[name]
        result.add(
            run="faulted", phase=name, alarms=len(observed),
            alarm_names=",".join(observed) or "-",
            dumps=len(faulted["dumps"]),
            probe_success=faulted["probe_stats"]["success"],
            probe_p95=faulted["probe_stats"]["p95_latency"],
            detected=any(alarm in observed for alarm in expected),
        )
    result.add(
        run="faulted", phase="overall", alarms=len(faulted["alarms"]),
        alarm_names=",".join(faulted["alarm_names"]) or "-",
        dumps=len(faulted["dumps"]),
        probe_success=faulted["probe_stats"]["success"],
        probe_p95=faulted["probe_stats"]["p95_latency"],
        detected=all(
            any(alarm in phases[name] for alarm in expected)
            for name, _s, _e, expected in PHASES
        ),
    )
    result.metrics["phase_alarms"] = phases
    result.metrics["faults_applied"] = faulted["faults"]
    result.note(
        "each injected fault class raises its matched detector inside "
        "its detection window — shed-step under the flood, "
        "antientropy-stale for the crashed registry, lease-expiry-spike "
        "when the partition starves replica refreshes — and every alarm "
        "carries a flight-recorder dump; the no-fault control run raises "
        "zero alarms."
    )
    if report_dir is not None:
        write_report(
            capacity_report(result, seed=seed,
                            monitor_snapshot=faulted["snapshot"]),
            report_dir,
        )
    return result


def run_health_smoke(*, seed: int = 0) -> dict:
    """The canonical health scenario for the tier-2 smoke gate.

    Returns everything the smoke assertions need: the clean run's alarm
    list (must be empty), the faulted run's per-phase alarm names (each
    phase's expected detector must appear), dump inventory (the crash
    must have captured one), a same-seed repeat of the faulted run
    (alarm timeline and dump bytes asserted identical), and two
    health-*disabled* runs of the same faulted scenario (trace exports
    asserted byte-identical — the inert-by-default contract).
    """
    clean = _run_scenario(seed=seed, faulted=False, health=health_config())
    faulted = _run_scenario(seed=seed, faulted=True, health=health_config())
    repeat = _run_scenario(seed=seed, faulted=True, health=health_config())
    off_a = _run_scenario(seed=seed, faulted=True, health=HealthConfig())
    off_b = _run_scenario(seed=seed, faulted=True, health=HealthConfig())
    return {
        "seed": seed,
        "expected": {name: list(expected)
                     for name, _s, _e, expected in PHASES},
        "clean_alarms": clean["alarms"],
        "clean_dumps": clean["dumps"],
        "phase_alarms": _phase_alarms(faulted["alarms"]),
        "faulted_alarms": faulted["alarms"],
        "faulted_dumps": faulted["dumps"],
        "faulted_alarm_json": faulted["alarm_json"],
        "faulted_dump_jsonl": faulted["dump_jsonl"],
        "repeat_alarm_json": repeat["alarm_json"],
        "repeat_dump_jsonl": repeat["dump_jsonl"],
        "off_trace_a": off_a["trace"],
        "off_trace_b": off_b["trace"],
        "off_alarms": off_a["alarms"],
        "probe_stats": {"clean": clean["probe_stats"],
                        "faulted": faulted["probe_stats"]},
        "faults": faulted["faults"],
    }
