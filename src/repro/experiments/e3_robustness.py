"""E3 — §3.1/§3.2: robustness to registry failures, random and targeted.

"A completely centralized solution has problems related to robustness,
since we now have a single point of failure." Decentralized systems "are
extremely resilient to both targeted attacks and random failure"; the
federated hybrid should degrade gracefully (clients fail over to
surviving registries; LAN fallback still finds local services).

Four architectures are built on the same multi-LAN scenario; a growing
fraction of their registry population is crashed (uniformly at random, or
targeted highest-degree-first); a fixed query workload then measures
recall against the still-alive service population.
"""

from __future__ import annotations

from repro.baselines.uddi import UddiSystem
from repro.baselines.wsdiscovery import WsDiscoverySystem
from repro.core.config import COOPERATION_REPLICATE_ADS, DiscoveryConfig
from repro.core.invariants import assert_invariants
from repro.experiments.common import ExperimentResult
from repro.metrics.retrieval import score_queries
from repro.metrics.topology import degree_of, discovery_graph
from repro.netsim.failures import AttackSchedule
from repro.netsim.faults import FaultPlan
from repro.semantics.generator import battlefield_ontology
from repro.workloads.queries import QueryDriver, QueryWorkload
from repro.workloads.scenarios import ScenarioSpec, build_scenario

ARCHITECTURES = ("federated", "cluster", "uddi", "wsd-adhoc")


def _spec(arch: str, lans: int, services_per_lan: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"e3-{arch}",
        lan_names=tuple(f"lan-{i}" for i in range(lans)),
        ontology_factory=battlefield_ontology,
        registries_per_lan=1,
        services_per_lan=services_per_lan,
        clients_per_lan=1,
        federation="ring",
        seed=seed,
    )


def _build(arch: str, lans: int, services_per_lan: int, seed: int):
    spec = _spec(arch, lans, services_per_lan, seed)
    ontology = spec.ontology_factory()
    if arch == "federated":
        return build_scenario(spec, config=DiscoveryConfig())
    if arch == "cluster":
        return build_scenario(
            spec,
            config=DiscoveryConfig(
                cooperation=COOPERATION_REPLICATE_ADS, default_ttl=0
            ),
        )
    if arch == "uddi":
        system = UddiSystem(seed=seed, ontology=ontology)
        for lan in spec.lan_names:
            system.add_lan(lan)
        system.add_registry(spec.lan_names[0])
        built = build_scenario(spec, system=system, with_registries=False)
        return built
    if arch == "wsd-adhoc":
        system = WsDiscoverySystem(seed=seed, ontology=ontology)
        built = build_scenario(spec, system=system, with_registries=False)
        return built
    raise ValueError(f"unknown architecture {arch!r}")


def run(
    *,
    lans: int = 4,
    services_per_lan: int = 3,
    n_queries: int = 10,
    fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0),
    strategies: tuple[str, ...] = ("random", "targeted"),
    recovery: float = 2.0,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep registry-failure fraction × attack strategy × architecture.

    ``recovery`` is how long (simulated seconds) the system runs between
    the failures and the query workload: ~2 s measures the immediate
    impact; a couple of renew intervals (e.g. 90 s) lets orphaned service
    nodes fail over and republish, measuring the architecture's
    self-healing.
    """
    result = ExperimentResult(
        experiment="E3",
        description="recall under registry failures, random vs targeted (§3)",
    )
    for arch in ARCHITECTURES:
        for strategy in strategies:
            for fraction in fractions:
                if arch == "wsd-adhoc" and fraction > 0.0 and fraction < 1.0:
                    continue  # no registries to fail: endpoints identical
                row = _run_one(arch, strategy, fraction, lans,
                               services_per_lan, n_queries, recovery, seed)
                result.add(**row)
    result.note(
        "uddi collapses at any failure touching its single registry; "
        "wsd-adhoc is registry-free (immune but LAN-local); federated "
        "degrades gracefully via failover + fallback (paper §3, §4)."
    )
    return result


def _run_one(
    arch: str,
    strategy: str,
    fraction: float,
    lans: int,
    services_per_lan: int,
    n_queries: int,
    recovery: float,
    seed: int,
) -> dict:
    built = _build(arch, lans, services_per_lan, seed)
    system = built.system
    system.run(until=12.0)  # bootstrap + a couple of signalling rounds

    registries = [r.node_id for r in system.registries]
    n_kill = round(fraction * len(registries))
    killed: list[str] = []
    if n_kill:
        graph = discovery_graph(system)
        attack = AttackSchedule(
            sim=system.sim,
            network=system.network,
            targets=registries,
            strategy=strategy,
            value=lambda nid: float(degree_of(graph, nid)),
        )
        killed = attack.plan()[:n_kill]
        # The attack ordering picks the victims; a FaultPlan executes
        # the crashes so they are scheduled, counted, and auditable like
        # every other injected fault.
        plan = FaultPlan()
        for node_id in killed:
            plan.crash(system.sim.now, node_id)
        plan.apply(system)
        system.run_for(recovery)

    workload = QueryWorkload.anchored(
        built.generator, built.profiles, n_queries, generalize=1
    )
    driver = QueryDriver(system, workload, interval=0.5, seed=seed)
    issued = driver.play(settle=1.0, drain=20.0)
    alive = frozenset(
        s.profile.service_name for s in system.services if s.alive
    )
    scores = score_queries(issued, alive_only=alive)
    return {
        "arch": arch,
        "attack": strategy,
        "killed_fraction": fraction,
        "registries_killed": len(killed),
        "recall": scores.recall,
        "completed": sum(1 for q in issued if q.call.completed),
        "queries": len(issued),
    }


def canonical_fault_plan(system, *, start: float | None = None) -> FaultPlan:
    """The standard E3/E11 fault scenario: crash + partition + loss burst.

    Relative to ``start`` (default: the system's current time): the first
    registry crashes at +2 s; at +4 s the WAN splits with the first LAN
    isolated from the rest while the isolated LAN also suffers a 40 % loss
    burst for 8 s; everything heals at +14 s and the registry returns at
    +16 s.
    """
    t0 = system.sim.now if start is None else start
    lans = sorted(system.network.lans)
    registry = system.registries[0].node_id
    plan = (
        FaultPlan()
        .crash(t0 + 2.0, registry)
        .loss_burst(t0 + 4.0, 8.0, 0.4, lan=lans[0])
        .restart(t0 + 16.0, registry)
    )
    if len(lans) > 1:
        plan.partition(t0 + 4.0, [[lans[0]], lans[1:]])
        plan.heal(t0 + 14.0)
    return plan


def run_fault_scenario(
    *,
    lans: int = 3,
    services_per_lan: int = 2,
    n_queries: int = 6,
    seed: int = 0,
) -> dict:
    """Run the canonical fault scenario on the federated architecture.

    Builds the E3 federated deployment, applies
    :func:`canonical_fault_plan`, plays a query workload *through* the
    fault window, lets the system quiesce, and asserts the bookkeeping
    invariants. Deterministic: the same seed returns an identical snapshot
    on every invocation.

    Returns a dict with the fault history counts, traffic snapshot, and
    completed-query count — the experiment row a robustness report cites.
    """
    built = _build("federated", lans, services_per_lan, seed)
    system = built.system
    system.run(until=12.0)

    plan = canonical_fault_plan(system)
    applied = plan.apply(system)

    workload = QueryWorkload.anchored(
        built.generator, built.profiles, n_queries, generalize=1
    )
    driver = QueryDriver(system, workload, interval=2.0, seed=seed)
    issued = driver.play(settle=1.0, drain=30.0)
    # Let retries, renew cycles, and purge timers settle before sweeping.
    system.run_for(2 * system.config.lease_duration)
    assert_invariants(system)

    return {
        "faults": applied.counts(),
        "traffic": system.traffic(),
        "completed": sum(1 for q in issued if q.call.completed),
        "queries": len(issued),
        "alive_registries": sum(1 for r in system.registries if r.alive),
        "recoveries": dict(system.network.stats.recoveries),
    }


def run_convergence_scenario(
    *,
    lans: int = 3,
    services_per_lan: int = 2,
    interval: float = 5.0,
    max_rounds: int = 6,
    seed: int = 0,
) -> dict:
    """Partition a replicated cluster, diverge it, heal, and count the
    anti-entropy rounds until every live store agrees.

    The first LAN is split from the rest long enough for the federation
    failure detector to sever the links; new services publish on *both*
    sides mid-partition, so the replicas genuinely diverge. After the
    heal, the system is advanced one anti-entropy interval at a time
    until :func:`~repro.core.invariants.check_convergence` comes back
    clean — the bounded-round reconvergence the reconciliation protocol
    promises (asserted ≤ ``max_rounds``).
    """
    from repro.core.invariants import assert_convergence, check_convergence
    from repro.semantics.profiles import ServiceProfile

    spec = _spec("cluster-convergence", lans, services_per_lan, seed)
    built = build_scenario(
        spec,
        config=DiscoveryConfig(
            cooperation=COOPERATION_REPLICATE_ADS,
            default_ttl=0,
            antientropy_interval=interval,
        ),
    )
    system = built.system
    system.run(until=12.0)

    lan_names = sorted(system.network.lans)
    t0 = system.sim.now
    plan = (
        FaultPlan()
        .partition(t0 + 1.0, [[lan_names[0]], lan_names[1:]])
        .heal(t0 + 21.0)
    )
    applied = plan.apply(system)
    system.run_for(5.0)
    # Mid-partition publishes on both sides: replication floods cannot
    # cross the split, so the stores diverge for real.
    system.add_service(lan_names[0], ServiceProfile.build(
        "split-a", "ncw:RadarService", outputs=["ncw:AirTrack"]))
    system.add_service(lan_names[1], ServiceProfile.build(
        "split-b", "ncw:SensorService", outputs=["ncw:Track"]))
    system.run_for(17.0)  # rest of the partition + the heal

    diverged = bool(check_convergence(system))
    rounds = 0
    while rounds < max_rounds and check_convergence(system):
        system.run_for(interval)
        rounds += 1
    assert_convergence(system)
    assert_invariants(system)

    counters = {}
    for registry in system.registries:
        for key, value in registry.antientropy.counters().items():
            counters[key] = counters.get(key, 0) + value
    return {
        "faults": applied.counts(),
        "diverged_after_heal": diverged,
        "rounds_to_converge": rounds,
        "max_rounds": max_rounds,
        "antientropy": counters,
        "recoveries": dict(system.network.stats.recoveries),
    }


def run_degraded_latency(
    *,
    services_per_lan: int = 2,
    n_queries: int = 8,
    seed: int = 0,
) -> dict:
    """Query latency against a crashed neighbor, before and after the
    circuit breaker opens.

    Two federated LANs; the remote registry is crashed with the ping
    interval stretched far beyond the measurement window, so the missed-
    pong detector never drops the link — isolating the breaker's effect.
    The first ``breaker_failure_threshold`` degraded queries each ride
    out the full aggregation timeout; once the breaker opens, the fan-out
    skips the dead neighbor and queries complete at healthy-path latency
    again.
    """
    config = DiscoveryConfig(
        ping_interval=120.0,
        signalling_interval=None,
        aggregation_timeout=0.5,
        breaker_reset_timeout=300.0,
    )
    spec = _spec("degraded-latency", 2, services_per_lan, seed)
    built = build_scenario(spec, config=config)
    system = built.system
    system.run(until=6.0)

    from repro.semantics.profiles import ServiceRequest

    client = system.clients[0]
    anchor = built.profiles[0]
    request = ServiceRequest.build(anchor.category, outputs=list(anchor.outputs))
    remote = system.registries[1]

    def measure(count: int) -> list[float]:
        latencies = []
        for _ in range(count):
            call = system.discover(client, request, timeout=10.0)
            latencies.append(call.latency if call.completed else 10.0)
            system.run_for(0.5)
        return latencies

    healthy = measure(n_queries)
    remote.crash()
    degraded = measure(config.breaker_failure_threshold)
    after_open = measure(n_queries)
    assert_invariants(system)

    return {
        "healthy_mean": sum(healthy) / len(healthy),
        "degraded_mean": sum(degraded) / len(degraded),
        "after_open_mean": sum(after_open) / len(after_open),
        "aggregation_timeout": config.aggregation_timeout,
        "breaker_states": system.registries[0].federation.breaker_states(),
        "recoveries": dict(system.network.stats.recoveries),
    }
