"""E6 — Figure 3/§4.7: the two LAN discovery modes across a registry outage.

"In dynamic environments, registries may disappear abruptly … If no
registry is available, using decentralized LAN service discovery could
ensure that local services still can be discovered … The use of a
decentralized discovery is a fallback solution."

Timeline on one LAN (registry + services + a client issuing a query every
second):

* phase ``registry``   — normal operation, queries served by the registry;
* phase ``outage``     — the registry crashes; queries time out once, then
  flow over multicast fallback (more bytes per query, but local services
  stay discoverable);
* phase ``recovered``  — the registry restarts; its beacons re-attract the
  client and the service nodes republish (lease NACK → republish path),
  and queries return to cheap unicast.

Reported per phase: success ratio, dominant ``via``, mean query latency,
and query bytes per query — including the paper's expected fallback cost.
"""

from __future__ import annotations

from collections import Counter

from repro.core.config import DiscoveryConfig
from repro.experiments.common import ExperimentResult, mean
from repro.metrics.bandwidth import TrafficWindow
from repro.semantics.generator import emergency_ontology
from repro.workloads.scenarios import ScenarioSpec, build_scenario


def run(
    *,
    n_services: int = 4,
    queries_per_phase: int = 8,
    seed: int = 0,
) -> ExperimentResult:
    """Run the crash/fallback/recovery timeline."""
    result = ExperimentResult(
        experiment="E6",
        description="LAN discovery modes across a registry outage (Fig. 3)",
    )
    config = DiscoveryConfig(
        lease_duration=10.0,
        purge_interval=2.0,
        beacon_interval=3.0,
        query_timeout=2.0,
        fallback_timeout=0.5,
    )
    spec = ScenarioSpec(
        name="e6",
        lan_names=("lan-0",),
        ontology_factory=emergency_ontology,
        registries_per_lan=1,
        services_per_lan=n_services,
        clients_per_lan=1,
        federation="none",
        seed=seed,
    )
    built = build_scenario(spec, config=config)
    system = built.system
    client = system.clients[0]
    registry = system.registries[0]
    system.run(until=2.0)

    labelled = built.generator.labelled_requests(
        built.profiles, 3 * queries_per_phase, generalize=1
    )
    batches = [
        labelled[0:queries_per_phase],
        labelled[queries_per_phase:2 * queries_per_phase],
        labelled[2 * queries_per_phase:],
    ]

    def run_phase(name: str, batch) -> None:
        window = TrafficWindow.open(system.network.stats, system.sim.now)
        issued = []
        for item in batch:
            call = system.discover(client, item.request, timeout=20.0)
            issued.append((call, item.relevant))
            system.run_for(1.0)
        window.close(system.sim.now)
        completed = [c for c, _rel in issued if c.completed]
        vias = Counter(c.via.split(":")[0] for c in completed)
        recall_values = []
        for call, relevant in issued:
            if call.completed and relevant:
                recall_values.append(
                    len(frozenset(call.service_names()) & relevant) / len(relevant)
                )
        result.add(
            phase=name,
            queries=len(issued),
            completed=len(completed),
            recall=mean(recall_values),
            via=vias.most_common(1)[0][0] if vias else "-",
            mean_latency=mean(c.latency for c in completed),
            query_bytes_per_q=window.query_bytes() / max(len(completed), 1),
        )

    run_phase("registry", batches[0])

    registry.crash()
    system.run_for(1.0)
    run_phase("outage", batches[1])

    registry.restart()
    # Beacons re-attract the client; services republish on lease NACK or
    # via their tracker noticing the registry again.
    system.run_for(15.0)
    run_phase("recovered", batches[2])

    result.note(
        "during the outage the client times out once, fails over to "
        "multicast fallback, and keeps finding local services; after the "
        "restart beacons re-attach everyone and service leases repopulate "
        "the registry."
    )
    return result
