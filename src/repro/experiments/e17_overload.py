"""E17 — overload protection: admission control and priority shedding.

E1 established that registries are where the architecture concentrates
load; this experiment asks what happens when that load *exceeds* a
registry's service capacity. A two-LAN federated deployment is flooded
with client queries at an offered load swept from half to four times the
registries' aggregate service capacity, under two admission policies:

* **shedding** — the bounded priority queue of
  :mod:`repro.core.admission`: renews outrank publishes outrank queries
  outrank forwarded work, overflow is answered with ``BUSY(retry_after)``,
  and past the degrade threshold the registry skips WAN fan-out and
  serves local hits marked ``degraded=True``;
* **baseline** — the same service-time costs with an *unbounded FIFO*
  queue: nothing is shed, nothing degrades, everything just waits.

The headline metric is **lease-renew survival at the end of the flood
window**: the fraction of live services whose advertisement is still
present in some live registry store. The priority queue keeps renews
flowing through saturation (survival stays ≳ 0.9 at 4× load); the FIFO
baseline queues renews behind tens of seconds of query backlog, leases
expire, and the store collapses (survival drops below 0.5) — the
soft-state failure mode the paper's aliveness argument warns about.
Goodput and p99 latency across the sweep show the second story: explicit
BUSY back-off plus sibling failover plus the decentralized LAN fallback
keep completed-query goodput on a plateau instead of a cliff.

Determinism: the flood schedule uses an experiment-local
``random.Random`` for client choice (the simulator RNG stream is never
touched), so a fixed seed reproduces every number exactly.
"""

from __future__ import annotations

import random

from repro.core.admission import AdmissionPolicy
from repro.core.config import DiscoveryConfig
from repro.core.invariants import assert_invariants
from repro.core.retry import RetryPolicy
from repro.experiments.common import ExperimentResult
from repro.obs.report import build_capacity_report, write_report
from repro.semantics.generator import battlefield_ontology
from repro.workloads.queries import QueryWorkload
from repro.workloads.scenarios import ScenarioSpec, build_scenario

MODES = ("shedding", "baseline")
MULTIPLIERS = (0.5, 1.0, 2.0, 4.0)

#: Service-time costs shared by both policies: 0.1 s per locally issued
#: query (10 queries/s of registry capacity), half that for forwarded
#: work, and cheap bookkeeping for publishes and renews.
_COSTS = dict(
    query_cost=0.1,
    forward_cost=0.05,
    publish_cost=0.02,
    renew_cost=0.01,
    sync_cost=0.01,
)


def shedding_policy() -> AdmissionPolicy:
    """Bounded priority queue with BUSY shedding and degraded mode."""
    return AdmissionPolicy(
        queue_limit=32,
        prioritized=True,
        degrade_at=0.5,
        retry_after_base=0.1,
        **_COSTS,
    )


def baseline_policy() -> AdmissionPolicy:
    """The shed-less control: same costs, unbounded FIFO, no degradation."""
    return AdmissionPolicy(
        queue_limit=None,
        prioritized=False,
        **_COSTS,
    )


def _config(policy: AdmissionPolicy) -> DiscoveryConfig:
    """A fast-clock deployment so a 10 s flood spans several lease cycles."""
    return DiscoveryConfig(
        lease_duration=6.0,
        renew_fraction=0.5,
        purge_interval=1.5,
        default_ttl=1,
        aggregation_timeout=0.5,
        query_timeout=3.0,
        fallback_timeout=0.25,
        beacon_interval=2.0,
        signalling_interval=None,
        ping_interval=2.0,
        breaker_failure_threshold=3,
        breaker_reset_timeout=5.0,
        admission=policy,
        query_retry=RetryPolicy(base=0.2, factor=2.0, cap=2.0,
                                max_attempts=3, jitter=0.1),
        renew_retry=RetryPolicy(base=0.5, factor=2.0, cap=2.0,
                                max_attempts=3, jitter=0.1),
    )


def _build(mode: str, seed: int):
    policy = shedding_policy() if mode == "shedding" else baseline_policy()
    spec = ScenarioSpec(
        name=f"e17-{mode}",
        lan_names=("lan-0", "lan-1"),
        ontology_factory=battlefield_ontology,
        registries_per_lan=1,
        services_per_lan=5,
        clients_per_lan=4,
        federation="chain",
        model_ids=("semantic",),
        seed=seed,
    )
    built = build_scenario(spec, config=_config(policy))
    # A sibling registry on the flooded LAN: client hashing spreads the
    # offered load across both, and BUSY-driven failover has somewhere
    # local to go before resorting to the decentralized fallback.
    built.system.add_registry("lan-0", model_ids=spec.model_ids)
    return built


def _renew_survival(system) -> float:
    """Fraction of live services still advertised in some live registry.

    The soft-state health metric: a service "survives" the overload
    window if at least one live registry still stores an advertisement
    naming it — i.e. its lease renewals kept landing.
    """
    alive = [s for s in system.services if s.alive]
    if not alive:
        return 1.0
    advertised: set[str] = set()
    for registry in system.registries:
        if not registry.alive:
            continue
        for ad in registry.store.all():
            advertised.add(ad.service_node)
    survived = sum(1 for s in alive if s.node_id in advertised)
    return survived / len(alive)


def _p99(values: list[float]) -> float:
    """The 99th percentile (nearest-rank); 0.0 for empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(0.99 * len(ordered)) - 1))
    return ordered[index]


def _run_flood(
    mode: str,
    multiplier: float,
    *,
    seed: int,
    window: float = 10.0,
) -> tuple[dict, list[tuple[int, float]]]:
    """Flood one deployment at ``multiplier`` × capacity for ``window`` s.

    Returns the experiment row — window-end renew survival and goodput,
    post-drain success ratio and latency percentiles, and the admission
    counters — plus the combined shed log (``(queue_depth, retry_after)``
    pairs) of every registry, which the smoke asserts is monotone.
    Invariants (including queue drain) are asserted after the backlog has
    fully drained.
    """
    built = _build(mode, seed)
    system = built.system
    system.run(until=8.0)  # bootstrap: probes, publishes, first renews

    policy = system.config.admission
    clients = list(system.clients)
    capacity_qps = len(system.registries) / policy.query_cost
    rate = multiplier * capacity_qps
    count = max(1, round(rate * window))
    interval = window / count

    workload = QueryWorkload.anchored(
        built.generator, built.profiles, min(count, 64), generalize=1
    )
    requests = workload.labelled
    rng = random.Random(seed)
    issued = []
    t0 = system.sim.now
    for i in range(count):
        item = requests[i % len(requests)]
        client = clients[rng.randrange(len(clients))]

        def issue(client=client, item=item) -> None:
            if not client.alive:
                return
            issued.append(client.discover(item.request, model_id="semantic"))

        system.sim.schedule_at(t0 + i * interval, issue)

    # -- window end: measure BEFORE the backlog drains -------------------
    system.run(until=t0 + window)
    renew_survival = _renew_survival(system)
    ok_in_window = sum(1 for call in issued if call.completed and call.hits)
    completed_in_window = sum(1 for call in issued if call.completed)
    backlog = max(
        (r.admission.backlog_cost for r in system.registries), default=0.0
    )

    # -- drain: let every queue empty and every call resolve -------------
    system.run_for(30.0 + 2.0 * backlog)
    assert_invariants(system)

    shed = sum(r.admission.shed for r in system.registries)
    busy = sum(r.admission.busy_sent for r in system.registries)
    max_depth = max((r.admission.max_depth for r in system.registries),
                    default=0)
    degraded_answers = system.network.metrics.counter("admission.degraded").value
    latencies = [call.latency for call in issued if call.completed]
    succeeded = sum(1 for call in issued if call.completed and call.hits)
    shed_pairs: list[tuple[int, float]] = []
    for registry in system.registries:
        shed_pairs.extend(registry.admission.shed_log)

    row = {
        "mode": mode,
        "load": multiplier,
        "offered_qps": rate,
        "issued": len(issued),
        "renew_survival": renew_survival,
        "goodput_qps": ok_in_window / window,
        "window_survival": completed_in_window / len(issued) if issued else 1.0,
        "success_ratio": succeeded / len(issued) if issued else 1.0,
        "p99_latency": _p99(latencies),
        "shed": shed,
        "busy": busy,
        "degraded": degraded_answers,
        "max_depth": max_depth,
        "fallbacks": sum(c.fallback_queries for c in system.clients),
    }
    return row, shed_pairs


def capacity_report(result: ExperimentResult, *, seed: int,
                    mode: str = "shedding") -> dict:
    """E17's sweep as a capacity-planning report (one admission mode)."""
    rows = [row for row in result.rows if row["mode"] == mode]
    return build_capacity_report(
        "E17",
        seed=seed,
        points=[
            {
                "qps": row["offered_qps"],
                "success": row["success_ratio"],
                "latency": row["p99_latency"],
                "load": row["load"],
                "renew_survival": row["renew_survival"],
            }
            for row in rows
        ],
        shed=sum(row["shed"] for row in rows),
        issued=sum(row["issued"] for row in rows),
        notes=(f"admission mode: {mode}",),
    )


def run(
    *,
    multipliers: tuple[float, ...] = MULTIPLIERS,
    window: float = 10.0,
    seed: int = 0,
    report_dir: str | None = None,
) -> ExperimentResult:
    """Sweep offered load × admission policy; the E17 result table.

    ``report_dir`` additionally writes the shedding-mode sweep as a
    capacity-planning report (see :mod:`repro.obs.report`).
    """
    result = ExperimentResult(
        experiment="E17",
        description="overload protection: goodput, p99, renew survival "
                    "under query floods (§3.1)",
    )
    for mode in MODES:
        for multiplier in multipliers:
            row, _shed = _run_flood(mode, multiplier, seed=seed,
                                    window=window)
            result.add(**row)
    shedding_4x = result.single(mode="shedding", load=multipliers[-1])
    baseline_4x = result.single(mode="baseline", load=multipliers[-1])
    result.metrics["renew_survival_at_peak"] = {
        "shedding": shedding_4x["renew_survival"],
        "baseline": baseline_4x["renew_survival"],
    }
    result.note(
        "the priority queue sheds low-priority work first: renews keep "
        "flowing at 4x saturation (survival >= 0.9) while the shed-less "
        "FIFO baseline queues them behind the flood until leases expire "
        "(survival < 0.5) — the soft-state collapse of §4.8."
    )
    result.note(
        "BUSY(retry_after) + sibling failover + LAN fallback keep goodput "
        "on a plateau instead of a cliff; degraded=True responses trade "
        "WAN coverage for bounded latency."
    )
    if report_dir is not None:
        write_report(capacity_report(result, seed=seed), report_dir)
    return result


def run_overload_smoke(*, seed: int = 0) -> dict:
    """The canonical overload scenario for the tier-2 smoke gate.

    Runs the shedding policy at 1× and 4× capacity and the shed-less
    baseline at 4×, and returns everything the smoke assertions need:
    survival numbers, the shed log (depth → retry_after pairs, asserted
    monotone), and admission counters. Deterministic: the same seed
    yields an identical snapshot on every call.
    """
    shedding_1x, _ = _run_flood("shedding", 1.0, seed=seed)
    shedding_4x, shed_pairs = _run_flood("shedding", 4.0, seed=seed)
    baseline_4x, baseline_pairs = _run_flood("baseline", 4.0, seed=seed)

    return {
        "seed": seed,
        "shedding_1x": shedding_1x,
        "shedding_4x": shedding_4x,
        "baseline_4x": baseline_4x,
        "shed_pairs": shed_pairs,
        "baseline_shed_pairs": baseline_pairs,
        "retry_after_base": shedding_policy().retry_after_base,
    }
