"""E15 (extension) — §4.9: dynamic registry-role negotiation.

"Dynamic assignment of registry node responsibility is a challenging
problem … a policy could for instance include something like 'try to
maintain three registries on each LAN'."

A LAN's registries are repeatedly crashed while a client keeps querying
every second. With standby registries implementing the quota policy, the
LAN promotes a replacement within a few beacon intervals and registry-mode
discovery continues; without them the clients live on the multicast
fallback until the crashed registry returns (if ever).

Reported: fraction of queries served in registry mode, fraction served at
all, and the standby's promotion/demotion counts.
"""

from __future__ import annotations

from repro.core.config import COOPERATION_REPLICATE_ADS, DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.experiments.common import ExperimentResult
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])


def run(
    *,
    n_queries: int = 30,
    outage_at: float = 10.0,
    restart_at: float = 40.0,
    seed: int = 0,
) -> ExperimentResult:
    """Compare a LAN with and without a standby registry across an outage."""
    result = ExperimentResult(
        experiment="E15",
        description="registry-role negotiation: standby promotion (§4.9)",
    )
    for standby in (False, True):
        result.add(**_run_one(standby, n_queries, outage_at, restart_at, seed))
    result.note(
        "the standby restores registry-mode service within a few beacon "
        "intervals of the crash and steps down once the primary returns; "
        "without it the LAN runs on multicast fallback for the whole "
        "outage."
    )
    return result


def _run_one(with_standby: bool, n_queries: int, outage_at: float,
             restart_at: float, seed: int) -> dict:
    config = DiscoveryConfig(
        beacon_interval=1.0, lease_duration=5.0, purge_interval=1.0,
        query_timeout=2.0, aggregation_timeout=0.3, fallback_timeout=0.4,
    )
    system = DiscoverySystem(seed=seed, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    primary = system.add_registry("lan-0")
    standby = system.add_standby_registry("lan-0", lan_target=1) \
        if with_standby else None
    system.add_service("lan-0", ServiceProfile.build(
        "radar", "ncw:RadarService", outputs=["ncw:AirTrack"]))
    client = system.add_client("lan-0")
    system.run(until=3.0)
    system.sim.schedule_at(outage_at, primary.crash)
    system.sim.schedule_at(restart_at, primary.restart)

    served_by_registry = 0
    served = 0
    for _ in range(n_queries):
        call = system.discover(client, REQUEST, timeout=20.0)
        if call.completed and call.hits:
            served += 1
            if call.via.startswith("registry:"):
                served_by_registry += 1
        system.run_for(1.0)

    return {
        "standby": "yes" if with_standby else "no",
        "queries": n_queries,
        "served": served,
        "registry_mode": served_by_registry,
        "registry_mode_frac": served_by_registry / n_queries,
        "promotions": standby.promotions if standby else 0,
        "demotions": standby.demotions if standby else 0,
    }


def run_warm_standby(
    *,
    outage_at: float = 10.0,
    window: float = 25.0,
    seed: int = 0,
) -> ExperimentResult:
    """Warm vs cold standby promotion: the post-promotion staleness window.

    Two federated LANs replicate advertisements; the only matching service
    lives on the *remote* LAN, so after the local primary crashes, the
    promoted standby can serve it only from replicated state. A cold
    standby (no WAN seeds — the pre-warm-sync behavior) activates with an
    empty store and stays isolated from the WAN, so the staleness window
    spans the whole outage. A warm standby anti-entropy-pulls from its
    seed at promotion and serves the remote service within a round-trip.
    """
    result = ExperimentResult(
        experiment="E15",
        description="warm vs cold standby promotion staleness (§4.9)",
    )
    for warm in (False, True):
        result.add(**_run_warm_one(warm, outage_at, window, seed))
    result.note(
        "staleness is measured from promotion to the first registry-mode "
        "hit on the remote service; the cold standby never catches up "
        "within the window, the warm one converges in about a round-trip."
    )
    return result


def _run_warm_one(warm: bool, outage_at: float, window: float, seed: int) -> dict:
    config = DiscoveryConfig(
        beacon_interval=1.0, lease_duration=8.0, purge_interval=1.0,
        query_timeout=2.0, aggregation_timeout=0.3, fallback_timeout=0.4,
        cooperation=COOPERATION_REPLICATE_ADS, default_ttl=0,
        antientropy_interval=5.0,
    )
    system = DiscoverySystem(seed=seed, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    system.add_lan("lan-1")
    remote = system.add_registry("lan-1")
    primary = system.add_registry("lan-0", seeds=(remote.node_id,))
    standby = system.add_standby_registry(
        "lan-0", lan_target=1,
        seeds=(remote.node_id,) if warm else (),
    )
    system.add_service("lan-1", ServiceProfile.build(
        "radar", "ncw:RadarService", outputs=["ncw:AirTrack"]))
    client = system.add_client("lan-0")
    system.run(until=3.0)
    system.sim.schedule_at(outage_at, primary.crash)
    system.run(until=outage_at + 0.1)

    deadline = outage_at + window
    while system.sim.now < deadline and standby.last_promoted_at is None:
        system.run_for(0.25)
    promoted_at = standby.last_promoted_at

    # Staleness window: from promotion until the standby's store holds
    # every advertisement the surviving remote registry replicates.
    target = frozenset(ad.ad_id for ad in remote.store.all())
    synced_at: float | None = None
    while promoted_at is not None and system.sim.now < deadline:
        held = frozenset(ad.ad_id for ad in standby.store.all())
        if target and target <= held:
            synced_at = system.sim.now
            break
        system.run_for(0.25)

    staleness = window
    if promoted_at is not None and synced_at is not None:
        staleness = max(synced_at - promoted_at, 0.0)
    call = system.discover(client, REQUEST, timeout=5.0)
    return {
        "warm": "yes" if warm else "no",
        "promoted": promoted_at is not None,
        "promotion_delay": (promoted_at - outage_at) if promoted_at else None,
        "staleness": staleness,
        "standby_store": len(standby.store),
        "served_after": call.succeeded,
        "warm_syncs": system.network.stats.recoveries.get("standby-warm-sync", 0),
    }
