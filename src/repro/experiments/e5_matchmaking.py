"""E5 — §4.2/§2: semantic vs syntactic service selection.

"Since services can be quite complex, service selection based on semantic
descriptions is necessary to find the best-suited services for given
tasks. This means that it can become more costly to evaluate queries,
since reasoning about service descriptions may be necessary."

The same service population is described under all three models; requests
are anchored at deployed services but phrased ``generalize`` steps up the
ontology (asking for a *Sensor* when a *Radar* was advertised — exactly
the subsumption case §4.2 uses). Ground truth is the ontology-implied
relevant set (degree-of-match ≥ subsumes on the full ontology); by
construction the semantic matchmaker recovers it exactly, so the
interesting numbers are *how much the syntactic models miss* and *what
the semantic model pays* (subsumption checks, wall-clock per evaluation —
the paper's cost claim, also benchmarked in
``benchmarks/test_e5_matchmaking.py``).

This experiment is pure matchmaking — no network — because the claim is
about description expressivity, not distribution.
"""

from __future__ import annotations

import time

from repro.descriptions.semantic import SemanticModel
from repro.descriptions.template import TemplateModel
from repro.descriptions.uri import UriModel
from repro.experiments.common import ExperimentResult
from repro.metrics.retrieval import RetrievalScores
from repro.obs.metrics import Histogram
from repro.semantics.generator import (
    OntologyGenerator,
    ProfileGenerator,
    battlefield_ontology,
)
from repro.semantics.ontology import Ontology


#: Per-request evaluation times are micro- to milliseconds; the transport
#: buckets start at 1 ms and would lump everything into one bucket.
_EVAL_BUCKETS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 1e-1,
)


def _ontologies(seed: int) -> list[Ontology]:
    return [
        battlefield_ontology(),
        OntologyGenerator(seed).random_ontology(
            n_service_classes=40, n_data_classes=60
        ),
    ]


def run(
    *,
    n_profiles: int = 60,
    n_requests: int = 40,
    generalize_levels: tuple[int, ...] = (0, 1, 2),
    seed: int = 0,
) -> ExperimentResult:
    """Sweep request generality × description model × ontology."""
    result = ExperimentResult(
        experiment="E5",
        description="precision/recall and cost: uri vs template vs semantic (§4.2)",
    )
    for ontology in _ontologies(seed):
        generator = ProfileGenerator(ontology, seed=seed)
        profiles = generator.profiles(n_profiles)
        models = [UriModel(), TemplateModel(), SemanticModel(ontology)]
        descriptions = {
            model.model_id: [
                model.describe(p, f"svc://{p.service_name}") for p in profiles
            ]
            for model in models
        }
        for generalize in generalize_levels:
            labelled = generator.labelled_requests(
                profiles, n_requests, generalize=generalize
            )
            for model in models:
                pairs = []
                evaluations = 0
                # Per-request wall-clock distribution: E5 is the one
                # experiment where real reasoner time (not sim time) is
                # the claim under test, so the histogram is local rather
                # than part of a network's deterministic registry.
                request_latency = Histogram(
                    "matchmaker.request_latency", buckets=_EVAL_BUCKETS
                )
                started = time.perf_counter()
                for item in labelled:
                    request_started = time.perf_counter()
                    query = model.query_from(item.request)
                    returned = frozenset(
                        profile.service_name
                        for profile, description in zip(
                            profiles, descriptions[model.model_id]
                        )
                        if model.evaluate(description, query).matched
                    )
                    request_latency.observe(time.perf_counter() - request_started)
                    evaluations += len(profiles)
                    pairs.append((returned, item.relevant))
                elapsed = time.perf_counter() - started
                scores = RetrievalScores.from_pairs(pairs)
                result.add(
                    ontology=ontology.name,
                    model=model.model_id,
                    generalize=generalize,
                    precision=scores.precision,
                    recall=scores.recall,
                    f1=scores.f1,
                    us_per_eval=1e6 * elapsed / max(evaluations, 1),
                    p50_us=request_latency.percentile(0.50) * 1e6,
                    p95_us=request_latency.percentile(0.95) * 1e6,
                    p99_us=request_latency.percentile(0.99) * 1e6,
                )
                if model.model_id == "semantic":
                    result.metrics[
                        f"request_latency[{ontology.name}/g{generalize}]"
                    ] = request_latency.summary()
    result.note(
        "ground truth is ontology subsumption, which the semantic model "
        "recovers by construction; the table quantifies the syntactic gap "
        "and the semantic evaluation cost."
    )
    return result
