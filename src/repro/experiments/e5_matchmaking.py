"""E5 — §4.2/§2: semantic vs syntactic service selection.

"Since services can be quite complex, service selection based on semantic
descriptions is necessary to find the best-suited services for given
tasks. This means that it can become more costly to evaluate queries,
since reasoning about service descriptions may be necessary."

The same service population is described under all three models; requests
are anchored at deployed services but phrased ``generalize`` steps up the
ontology (asking for a *Sensor* when a *Radar* was advertised — exactly
the subsumption case §4.2 uses). Ground truth is the ontology-implied
relevant set (degree-of-match ≥ subsumes on the full ontology); by
construction the semantic matchmaker recovers it exactly, so the
interesting numbers are *how much the syntactic models miss* and *what
the semantic model pays* (subsumption checks, wall-clock per evaluation —
the paper's cost claim, also benchmarked in
``benchmarks/test_e5_matchmaking.py``).

This experiment is pure matchmaking — no network — because the claim is
about description expressivity, not distribution.
"""

from __future__ import annotations

import time

from repro.descriptions.semantic import SemanticModel
from repro.descriptions.template import TemplateModel
from repro.descriptions.uri import UriModel
from repro.experiments.common import ExperimentResult
from repro.metrics.retrieval import RetrievalScores
from repro.semantics.generator import (
    OntologyGenerator,
    ProfileGenerator,
    battlefield_ontology,
)
from repro.semantics.ontology import Ontology


def _ontologies(seed: int) -> list[Ontology]:
    return [
        battlefield_ontology(),
        OntologyGenerator(seed).random_ontology(
            n_service_classes=40, n_data_classes=60
        ),
    ]


def run(
    *,
    n_profiles: int = 60,
    n_requests: int = 40,
    generalize_levels: tuple[int, ...] = (0, 1, 2),
    seed: int = 0,
) -> ExperimentResult:
    """Sweep request generality × description model × ontology."""
    result = ExperimentResult(
        experiment="E5",
        description="precision/recall and cost: uri vs template vs semantic (§4.2)",
    )
    for ontology in _ontologies(seed):
        generator = ProfileGenerator(ontology, seed=seed)
        profiles = generator.profiles(n_profiles)
        models = [UriModel(), TemplateModel(), SemanticModel(ontology)]
        descriptions = {
            model.model_id: [
                model.describe(p, f"svc://{p.service_name}") for p in profiles
            ]
            for model in models
        }
        for generalize in generalize_levels:
            labelled = generator.labelled_requests(
                profiles, n_requests, generalize=generalize
            )
            for model in models:
                pairs = []
                evaluations = 0
                started = time.perf_counter()
                for item in labelled:
                    query = model.query_from(item.request)
                    returned = frozenset(
                        profile.service_name
                        for profile, description in zip(
                            profiles, descriptions[model.model_id]
                        )
                        if model.evaluate(description, query).matched
                    )
                    evaluations += len(profiles)
                    pairs.append((returned, item.relevant))
                elapsed = time.perf_counter() - started
                scores = RetrievalScores.from_pairs(pairs)
                result.add(
                    ontology=ontology.name,
                    model=model.model_id,
                    generalize=generalize,
                    precision=scores.precision,
                    recall=scores.recall,
                    f1=scores.f1,
                    us_per_eval=1e6 * elapsed / max(evaluations, 1),
                )
    result.note(
        "ground truth is ontology subsumption, which the semantic model "
        "recovers by construction; the table quantifies the syntactic gap "
        "and the semantic evaluation cost."
    )
    return result
