"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause
while still being able to discriminate on the concrete subtype.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Raised for invalid simulator operations (e.g. scheduling in the past)."""


class NetworkError(ReproError):
    """Raised for invalid network configuration or addressing errors."""


class UnknownNodeError(NetworkError):
    """Raised when a message is addressed to a node id the network has never seen."""


class OntologyError(ReproError):
    """Raised for inconsistent or malformed ontology definitions."""


class UnknownClassError(OntologyError):
    """Raised when a concept URI is not defined in the ontology."""


class CycleError(OntologyError):
    """Raised when subclass axioms would introduce a cycle in the class graph."""


class DescriptionError(ReproError):
    """Raised for malformed service descriptions or queries."""


class UnsupportedModelError(DescriptionError):
    """Raised when a payload's description model is not registered with a node."""


class RegistryError(ReproError):
    """Raised for invalid registry operations."""


class LeaseError(RegistryError):
    """Raised for invalid lease operations (e.g. renewing an unknown lease)."""


class AdvertisementNotFoundError(RegistryError):
    """Raised when referencing an advertisement UUID the registry does not hold."""


class FederationError(ReproError):
    """Raised for invalid registry-network (federation) operations."""


class WorkloadError(ReproError):
    """Raised for invalid workload/scenario parameters."""


class ExperimentError(ReproError):
    """Raised when an experiment is configured inconsistently."""


class InvariantError(ReproError):
    """Raised when a post-scenario invariant sweep finds bookkeeping rot."""
