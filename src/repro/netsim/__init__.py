"""Discrete-event network simulator substrate.

The paper targets "dynamic environments" — LANs and WANs where nodes with
wireless links appear and disappear. This package provides the deterministic
substrate every protocol in :mod:`repro.core` and :mod:`repro.baselines`
runs on:

* :class:`~repro.netsim.simulator.Simulator` — a heap-based discrete-event
  scheduler with a seeded RNG and stable event ordering, so every run is
  reproducible bit-for-bit.
* :class:`~repro.netsim.node.Node` — the base class for protocol agents
  (clients, service nodes, registries) with mailbox dispatch, timers, and
  crash/restart semantics.
* :class:`~repro.netsim.network.Network` / :class:`~repro.netsim.network.Lan`
  — LAN segments are multicast domains; LANs are joined by WAN links.
* :class:`~repro.netsim.messages.Envelope` — every message carries a byte
  size so bandwidth claims are *measured*, not asserted.
* :mod:`~repro.netsim.failures` — churn processes, crash schedules, and
  random/targeted attack generators.
* :mod:`~repro.netsim.faults` — declarative :class:`~repro.netsim.faults.
  FaultPlan` schedules (crash/restart, partition/heal, loss bursts,
  latency spikes) driving the primitives above deterministically.
"""

from repro.netsim.messages import Envelope, SizeModel
from repro.netsim.network import Lan, LatencySpike, LossWindow, Network
from repro.netsim.node import Node, Timer
from repro.netsim.simulator import Simulator
from repro.netsim.stats import TrafficStats
from repro.netsim.failures import AttackSchedule, ChurnProcess, CrashSchedule
from repro.netsim.faults import AppliedFaults, FaultAction, FaultPlan

__all__ = [
    "AppliedFaults",
    "AttackSchedule",
    "ChurnProcess",
    "CrashSchedule",
    "Envelope",
    "FaultAction",
    "FaultPlan",
    "Lan",
    "LatencySpike",
    "LossWindow",
    "Network",
    "Node",
    "SizeModel",
    "Simulator",
    "Timer",
    "TrafficStats",
]
