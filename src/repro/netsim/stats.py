"""Traffic accounting.

Every byte the transport moves is recorded here, broken down by message
type, by node, and by scope (LAN-local unicast, multicast, WAN). The
experiment harness reads these counters to produce the bandwidth columns
of E1/E6/E7/E8/E10.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any


@dataclass
class TrafficStats:
    """Mutable counters the transport updates on every delivery attempt."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    bytes_wan: int = 0
    bytes_multicast: int = 0
    by_type_count: Counter = field(default_factory=Counter)
    by_type_bytes: Counter = field(default_factory=Counter)
    node_bytes_sent: Counter = field(default_factory=Counter)
    node_bytes_received: Counter = field(default_factory=Counter)
    node_messages_received: Counter = field(default_factory=Counter)
    #: Drops broken down by cause: "loss" (ambient loss_rate),
    #: "fault-loss" (an injected loss window), "unreachable", "dead-dst",
    #: "partition-in-flight".
    drops_by_reason: Counter = field(default_factory=Counter)
    #: Protocol retries by kind ("query", "publish", "renew"), recorded by
    #: the nodes that re-send.
    retries: Counter = field(default_factory=Counter)
    #: Injected fault events by kind ("crash", "restart", "partition",
    #: "heal", "loss-window", "latency-spike"), recorded by FaultPlan.
    faults: Counter = field(default_factory=Counter)
    #: Self-healing events by kind, recorded by the recovery machinery:
    #: "antientropy-round", "antientropy-pull", "antientropy-ads-sent",
    #: "antientropy-ads-applied", "antientropy-removal",
    #: "resurrection-blocked", "breaker-open", "breaker-half-open",
    #: "breaker-close", "breaker-skip", "standby-warm-sync",
    #: "late-response".
    recoveries: Counter = field(default_factory=Counter)
    #: Optional :class:`~repro.obs.metrics.MetricsRegistry` mirror (set by
    #: the owning :class:`~repro.netsim.network.Network`): retries, faults,
    #: recoveries, and drops are echoed as ``retry.<kind>``-style counters
    #: so the metrics facade sees event *rates* without a second wiring
    #: pass. Duck-typed to keep this module free of obs imports.
    metrics: Any = field(default=None, repr=False, compare=False)

    def record_send(self, msg_type: str, src: str, size: int, *, wan: bool, multicast: bool) -> None:
        """Account for one transmission leaving ``src``."""
        self.messages_sent += 1
        self.bytes_sent += size
        self.by_type_count[msg_type] += 1
        self.by_type_bytes[msg_type] += size
        self.node_bytes_sent[src] += size
        if wan:
            self.bytes_wan += size
        if multicast:
            self.bytes_multicast += size

    def record_delivery(self, dst: str, size: int) -> None:
        """Account for one copy arriving at ``dst``."""
        self.messages_delivered += 1
        self.bytes_delivered += size
        self.node_bytes_received[dst] += size
        self.node_messages_received[dst] += 1

    def record_drop(self, reason: str = "loss") -> None:
        """Account for a transmission that never arrived (loss/partition/crash)."""
        self.messages_dropped += 1
        self.drops_by_reason[reason] += 1
        if self.metrics is not None:
            self.metrics.counter(f"drop.{reason}").inc()

    def record_retry(self, kind: str) -> None:
        """Account for one protocol-level retransmission of ``kind``."""
        self.retries[kind] += 1
        if self.metrics is not None:
            self.metrics.counter(f"retry.{kind}").inc()

    def record_fault(self, kind: str) -> None:
        """Account for one injected fault event of ``kind``."""
        self.faults[kind] += 1
        if self.metrics is not None:
            self.metrics.counter(f"fault.{kind}").inc()

    def record_recovery(self, kind: str, n: int = 1) -> None:
        """Account for ``n`` self-healing events of ``kind``."""
        self.recoveries[kind] += n
        if self.metrics is not None:
            self.metrics.counter(f"recovery.{kind}").inc(n)

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict copy of the counters (for experiment tables).

        Scalars plus a nested ``by_type`` section with per-message-type
        count/bytes breakdowns.
        """
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
            "bytes_wan": self.bytes_wan,
            "bytes_multicast": self.bytes_multicast,
            "drops_fault": self.drops_by_reason["fault-loss"],
            "retries_total": sum(self.retries.values()),
            "faults_total": sum(self.faults.values()),
            "recoveries_total": sum(self.recoveries.values()),
            "by_type": {
                msg_type: {
                    "count": self.by_type_count[msg_type],
                    "bytes": self.by_type_bytes[msg_type],
                }
                for msg_type in sorted(self.by_type_count)
            },
        }

    def fault_report(self) -> dict[str, dict[str, int]]:
        """Detailed robustness counters (drops by cause, retries, faults)."""
        return {
            "drops_by_reason": dict(self.drops_by_reason),
            "retries": dict(self.retries),
            "faults": dict(self.faults),
            "recoveries": dict(self.recoveries),
        }

    def delta_since(self, earlier: dict[str, Any]) -> dict[str, Any]:
        """Counters accumulated since an earlier :meth:`snapshot`.

        The nested ``by_type`` section is differenced per message type;
        types with a zero delta are omitted so windows stay compact.
        """
        current = self.snapshot()
        delta: dict[str, Any] = {}
        for key, value in current.items():
            if key == "by_type":
                earlier_types = earlier.get("by_type", {})
                types: dict[str, dict[str, int]] = {}
                for msg_type in sorted(set(value) | set(earlier_types)):
                    now_entry = value.get(msg_type, {"count": 0, "bytes": 0})
                    was_entry = earlier_types.get(msg_type, {"count": 0, "bytes": 0})
                    entry = {
                        "count": now_entry["count"] - was_entry["count"],
                        "bytes": now_entry["bytes"] - was_entry["bytes"],
                    }
                    if entry["count"] or entry["bytes"]:
                        types[msg_type] = entry
                delta[key] = types
            else:
                delta[key] = value - earlier.get(key, 0)
        return delta

    def max_node_load(self) -> tuple[str | None, int]:
        """The node that received the most bytes, and how many.

        Measures the paper's "load on the single node may become high"
        concern for centralized topologies.
        """
        if not self.node_bytes_received:
            return None, 0
        node, load = max(self.node_bytes_received.items(), key=lambda item: (item[1], item[0]))
        return node, load

    def reset(self) -> None:
        """Zero every counter (used between experiment phases)."""
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.bytes_wan = 0
        self.bytes_multicast = 0
        self.by_type_count.clear()
        self.by_type_bytes.clear()
        self.node_bytes_sent.clear()
        self.node_bytes_received.clear()
        self.node_messages_received.clear()
        self.drops_by_reason.clear()
        self.retries.clear()
        self.faults.clear()
        self.recoveries.clear()
