"""Traffic accounting.

Every byte the transport moves is recorded here, broken down by message
type, by node, and by scope (LAN-local unicast, multicast, WAN). The
experiment harness reads these counters to produce the bandwidth columns
of E1/E6/E7/E8/E10.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class TrafficStats:
    """Mutable counters the transport updates on every delivery attempt."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    bytes_wan: int = 0
    bytes_multicast: int = 0
    by_type_count: Counter = field(default_factory=Counter)
    by_type_bytes: Counter = field(default_factory=Counter)
    node_bytes_sent: Counter = field(default_factory=Counter)
    node_bytes_received: Counter = field(default_factory=Counter)
    node_messages_received: Counter = field(default_factory=Counter)
    #: Drops broken down by cause: "loss" (ambient loss_rate),
    #: "fault-loss" (an injected loss window), "unreachable", "dead-dst",
    #: "partition-in-flight".
    drops_by_reason: Counter = field(default_factory=Counter)
    #: Protocol retries by kind ("query", "publish", "renew"), recorded by
    #: the nodes that re-send.
    retries: Counter = field(default_factory=Counter)
    #: Injected fault events by kind ("crash", "restart", "partition",
    #: "heal", "loss-window", "latency-spike"), recorded by FaultPlan.
    faults: Counter = field(default_factory=Counter)
    #: Self-healing events by kind, recorded by the recovery machinery:
    #: "antientropy-round", "antientropy-pull", "antientropy-ads-sent",
    #: "antientropy-ads-applied", "antientropy-removal",
    #: "resurrection-blocked", "breaker-open", "breaker-half-open",
    #: "breaker-close", "breaker-skip", "standby-warm-sync",
    #: "late-response".
    recoveries: Counter = field(default_factory=Counter)

    def record_send(self, msg_type: str, src: str, size: int, *, wan: bool, multicast: bool) -> None:
        """Account for one transmission leaving ``src``."""
        self.messages_sent += 1
        self.bytes_sent += size
        self.by_type_count[msg_type] += 1
        self.by_type_bytes[msg_type] += size
        self.node_bytes_sent[src] += size
        if wan:
            self.bytes_wan += size
        if multicast:
            self.bytes_multicast += size

    def record_delivery(self, dst: str, size: int) -> None:
        """Account for one copy arriving at ``dst``."""
        self.messages_delivered += 1
        self.bytes_delivered += size
        self.node_bytes_received[dst] += size
        self.node_messages_received[dst] += 1

    def record_drop(self, reason: str = "loss") -> None:
        """Account for a transmission that never arrived (loss/partition/crash)."""
        self.messages_dropped += 1
        self.drops_by_reason[reason] += 1

    def record_retry(self, kind: str) -> None:
        """Account for one protocol-level retransmission of ``kind``."""
        self.retries[kind] += 1

    def record_fault(self, kind: str) -> None:
        """Account for one injected fault event of ``kind``."""
        self.faults[kind] += 1

    def record_recovery(self, kind: str, n: int = 1) -> None:
        """Account for ``n`` self-healing events of ``kind``."""
        self.recoveries[kind] += n

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the scalar counters (for experiment tables)."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
            "bytes_wan": self.bytes_wan,
            "bytes_multicast": self.bytes_multicast,
            "drops_fault": self.drops_by_reason["fault-loss"],
            "retries_total": sum(self.retries.values()),
            "faults_total": sum(self.faults.values()),
            "recoveries_total": sum(self.recoveries.values()),
        }

    def fault_report(self) -> dict[str, dict[str, int]]:
        """Detailed robustness counters (drops by cause, retries, faults)."""
        return {
            "drops_by_reason": dict(self.drops_by_reason),
            "retries": dict(self.retries),
            "faults": dict(self.faults),
            "recoveries": dict(self.recoveries),
        }

    def delta_since(self, earlier: dict[str, int]) -> dict[str, int]:
        """Scalar counters accumulated since an earlier :meth:`snapshot`."""
        current = self.snapshot()
        return {key: current[key] - earlier.get(key, 0) for key in current}

    def max_node_load(self) -> tuple[str | None, int]:
        """The node that received the most bytes, and how many.

        Measures the paper's "load on the single node may become high"
        concern for centralized topologies.
        """
        if not self.node_bytes_received:
            return None, 0
        node, load = max(self.node_bytes_received.items(), key=lambda item: (item[1], item[0]))
        return node, load

    def reset(self) -> None:
        """Zero every counter (used between experiment phases)."""
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.bytes_wan = 0
        self.bytes_multicast = 0
        self.by_type_count.clear()
        self.by_type_bytes.clear()
        self.node_bytes_sent.clear()
        self.node_bytes_received.clear()
        self.node_messages_received.clear()
        self.drops_by_reason.clear()
        self.retries.clear()
        self.faults.clear()
        self.recoveries.clear()
