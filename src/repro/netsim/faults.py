"""Declarative, deterministic fault injection.

The paper's central claim is that autonomous federated registries with
leasing *degrade gracefully* in dynamic environments — churn, crashes,
partitions, lossy links. :class:`FaultPlan` turns that from a qualitative
claim into assertable behavior: a plan is a declarative schedule of fault
actions (node crash/restart, LAN partition/heal, timed loss bursts,
latency spikes) that drives the existing :class:`~repro.netsim.simulator.
Simulator` and :class:`~repro.netsim.network.Network` primitives.

Two properties make plans useful for experiments:

* **Determinism** — a plan holds no hidden randomness; applying the same
  plan to two identically seeded deployments produces bit-identical runs
  (the stochastic churn builder draws from its *own* seeded RNG at build
  time, like :class:`~repro.workloads.trace.DynamicsTrace`).
* **Accounting** — every injected fault is counted in
  ``network.stats.faults`` and recorded in the applied plan's history, so
  an experiment row can state exactly what it survived.

Example
-------
>>> plan = (FaultPlan()                                # doctest: +SKIP
...         .crash(10.0, "registry-00")
...         .partition(12.0, [["lan-0"], ["lan-1", "lan-2"]])
...         .loss_burst(12.0, 8.0, 0.5, lan="lan-1")
...         .heal(25.0)
...         .restart(30.0, "registry-00"))
>>> applied = plan.apply(system)                       # doctest: +SKIP
>>> system.run(until=60.0)                             # doctest: +SKIP
>>> applied.counts()                                   # doctest: +SKIP
{'crash': 1, 'partition': 1, 'loss-window': 1, 'heal': 1, 'restart': 1}
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import SimulationError
from repro.netsim.failures import FailureEvent
from repro.netsim.network import LatencySpike, LossWindow, Network
from repro.netsim.simulator import Simulator

#: Fault kinds a plan can schedule.
KIND_CRASH = "crash"
KIND_RESTART = "restart"
KIND_PARTITION = "partition"
KIND_HEAL = "heal"
KIND_LOSS = "loss-window"
KIND_LATENCY = "latency-spike"
KIND_DISK_TORN = "disk-torn-write"
KIND_DISK_CORRUPT = "disk-corruption"
KIND_REPLICA_KILL = "replica-kill"


@dataclass(frozen=True)
class FaultAction:
    """One declarative entry in a :class:`FaultPlan` schedule."""

    time: float
    kind: str
    node_id: str = ""
    groups: tuple[tuple[str, ...], ...] = ()
    window: LossWindow | None = None
    spike: LatencySpike | None = None
    file: str = ""
    #: Shard key whose replica set a targeted kill resolves at fire time.
    key: str = ""
    #: How many of the key's alive replicas a targeted kill crashes.
    count: int = 0

    def describe(self) -> str:
        """Human-readable one-liner for histories and experiment notes."""
        if self.kind in (KIND_CRASH, KIND_RESTART):
            return f"t={self.time:g} {self.kind} {self.node_id}"
        if self.kind == KIND_REPLICA_KILL:
            return f"t={self.time:g} replica-kill {self.count} of key {self.key!r}"
        if self.kind in (KIND_DISK_TORN, KIND_DISK_CORRUPT):
            return f"t={self.time:g} {self.kind} {self.node_id}:{self.file}"
        if self.kind == KIND_PARTITION:
            return f"t={self.time:g} partition {list(map(list, self.groups))}"
        if self.kind == KIND_LOSS:
            w = self.window
            scope = w.lan or (w.link and "<->".join(sorted(w.link))) or "global"
            return f"t={w.start:g} loss {w.rate:g} on {scope} until {w.end:g}"
        if self.kind == KIND_LATENCY:
            s = self.spike
            scope = s.lan or (s.link and "<->".join(sorted(s.link))) or "global"
            return f"t={s.start:g} +{s.extra:g}s latency on {scope} until {s.end:g}"
        return f"t={self.time:g} {self.kind}"


class FaultPlan:
    """A declarative schedule of faults, applied to a deployment at once.

    Builder methods return ``self`` so plans read as a chain. Times are
    absolute simulated seconds; applying a plan whose earliest action is
    already in the past raises.
    """

    def __init__(self) -> None:
        self._actions: list[FaultAction] = []

    def __len__(self) -> int:
        return len(self._actions)

    # -- builders ---------------------------------------------------------

    def crash(self, at: float, node_id: str) -> "FaultPlan":
        """Crash ``node_id`` at time ``at`` (no-op if already down)."""
        self._actions.append(FaultAction(time=at, kind=KIND_CRASH, node_id=node_id))
        return self

    def restart(self, at: float, node_id: str) -> "FaultPlan":
        """Restart ``node_id`` at time ``at`` (no-op if already up)."""
        self._actions.append(FaultAction(time=at, kind=KIND_RESTART, node_id=node_id))
        return self

    def disk_torn_write(self, at: float, node_id: str, *, file: str = "wal") -> "FaultPlan":
        """Tear the tail of ``node_id``'s durable ``file`` at time ``at``.

        Models a crash mid-``write(2)``: a deterministic chunk of the most
        recent append is chopped off, leaving a half-written final record.
        Recovery must stop replay at the torn frame without crashing.
        No-op when the node never attached a disk.
        """
        self._actions.append(
            FaultAction(time=at, kind=KIND_DISK_TORN, node_id=node_id, file=file)
        )
        return self

    def disk_corrupt(self, at: float, node_id: str, *, file: str = "wal") -> "FaultPlan":
        """Flip a byte in the middle of ``node_id``'s durable ``file``.

        Models silent media corruption. Recovery must skip (and count)
        the CRC-failing record and let anti-entropy repair the loss.
        Deterministic: the flipped offset depends only on file length.
        No-op when the node never attached a disk.
        """
        self._actions.append(
            FaultAction(time=at, kind=KIND_DISK_CORRUPT, node_id=node_id, file=file)
        )
        return self

    def kill_replicas(self, at: float, key: str, count: int) -> "FaultPlan":
        """Crash ``count`` alive replicas of shard key ``key`` at ``at``.

        Placement is resolved *at fire time* from the first (sorted)
        alive registry with an active shard manager, so the kill targets
        whatever the ring then assigns — the adversarial fault E21 uses
        to knock out R−1 copies of one shard at once. No-op when no
        sharded registry is alive.
        """
        if count < 1:
            raise SimulationError(f"kill_replicas count must be >= 1, got {count}")
        self._actions.append(
            FaultAction(time=at, kind=KIND_REPLICA_KILL, key=key, count=count)
        )
        return self

    def partition(self, at: float, groups: Iterable[Iterable[str]]) -> "FaultPlan":
        """Split the WAN into LAN groups at time ``at`` (see
        :meth:`Network.partition`; every LAN must appear in one group)."""
        frozen = tuple(tuple(group) for group in groups)
        self._actions.append(FaultAction(time=at, kind=KIND_PARTITION, groups=frozen))
        return self

    def heal(self, at: float) -> "FaultPlan":
        """Heal all partitions at time ``at``."""
        self._actions.append(FaultAction(time=at, kind=KIND_HEAL))
        return self

    def loss_burst(
        self,
        start: float,
        duration: float,
        rate: float,
        *,
        lan: str | None = None,
        link: tuple[str, str] | None = None,
    ) -> "FaultPlan":
        """Extra delivery loss of ``rate`` during ``[start, start+duration)``.

        Scope with ``lan`` (traffic touching one LAN) or ``link`` (traffic
        between a LAN pair); neither means network-wide.
        """
        window = LossWindow(
            start=start, end=start + duration, rate=rate,
            lan=lan, link=frozenset(link) if link else None,
        )
        self._actions.append(FaultAction(time=start, kind=KIND_LOSS, window=window))
        return self

    def latency_spike(
        self,
        start: float,
        duration: float,
        extra: float,
        *,
        lan: str | None = None,
        link: tuple[str, str] | None = None,
    ) -> "FaultPlan":
        """Additive delivery latency of ``extra`` seconds during the window."""
        spike = LatencySpike(
            start=start, end=start + duration, extra=extra,
            lan=lan, link=frozenset(link) if link else None,
        )
        self._actions.append(FaultAction(time=start, kind=KIND_LATENCY, spike=spike))
        return self

    @staticmethod
    def churn(
        node_ids: Iterable[str],
        *,
        rate: float,
        window: float,
        seed: int = 0,
        mean_downtime: float | None = None,
        start: float = 0.0,
    ) -> "FaultPlan":
        """A Poisson crash/restart plan over ``node_ids``.

        The randomness is consumed *here*, from a private RNG, so the
        resulting plan is a fixed schedule — every deployment it is
        applied to sees byte-identical dynamics (the recorded-trace
        discipline of :class:`~repro.workloads.trace.DynamicsTrace`).
        ``mean_downtime=None`` makes crashes permanent.
        """
        pool = sorted(node_ids)
        if not pool:
            raise SimulationError("churn plan needs at least one node")
        if rate <= 0:
            raise SimulationError(f"churn rate must be positive, got {rate}")
        rng = random.Random(seed)
        plan = FaultPlan()
        down: set[str] = set()
        now = start
        while True:
            now += rng.expovariate(rate)
            if now >= start + window:
                break
            alive = [nid for nid in pool if nid not in down]
            if not alive:
                continue
            victim = rng.choice(alive)
            plan.crash(now, victim)
            if mean_downtime is None:
                down.add(victim)
            else:
                back = now + rng.expovariate(1.0 / mean_downtime)
                if back < start + window:
                    plan.restart(back, victim)
                else:
                    down.add(victim)
        return plan

    # -- introspection ----------------------------------------------------

    def actions(self) -> list[FaultAction]:
        """The schedule in time order (stable within equal times)."""
        return sorted(self._actions, key=lambda a: a.time)

    def describe(self) -> list[str]:
        """Human-readable schedule, one line per action."""
        return [action.describe() for action in self.actions()]

    # -- application ------------------------------------------------------

    def apply(self, target) -> "AppliedFaults":
        """Schedule every action of this plan onto a deployment.

        ``target`` is a :class:`Network` or anything exposing ``.network``
        and ``.sim`` (e.g. :class:`~repro.core.system.DiscoverySystem`).
        Returns the :class:`AppliedFaults` handle whose history fills in
        as the simulation executes the schedule. A plan may be applied to
        any number of (fresh) deployments.
        """
        network: Network = target if isinstance(target, Network) else target.network
        sim: Simulator = network.sim
        applied = AppliedFaults(plan=self, network=network)
        for action in self.actions():
            if action.time < sim.now:
                raise SimulationError(
                    f"fault action at t={action.time} is in the past (now={sim.now})"
                )
            if action.kind == KIND_LOSS:
                network.add_loss_window(action.window)
            elif action.kind == KIND_LATENCY:
                network.add_latency_spike(action.spike)
            sim.schedule_at(action.time, applied._execute, action)
        return applied


@dataclass
class AppliedFaults:
    """The live handle for one plan application: history and counters."""

    plan: FaultPlan
    network: Network
    history: list[FailureEvent] = field(default_factory=list)

    def _execute(self, action: FaultAction) -> None:
        """Fire one scheduled fault action (simulator callback)."""
        now = self.network.sim.now
        if action.kind == KIND_CRASH:
            node = self.network.nodes.get(action.node_id)
            if node is None or not node.alive:
                return
            node.crash()
        elif action.kind == KIND_RESTART:
            node = self.network.nodes.get(action.node_id)
            if node is None or node.alive:
                return
            node.restart()
        elif action.kind == KIND_PARTITION:
            self.network.partition(action.groups)
        elif action.kind == KIND_HEAL:
            self.network.heal_partition()
        elif action.kind == KIND_DISK_TORN:
            disk = self.network.disks.get(action.node_id)
            if disk is None or disk.tear_tail(action.file) == 0:
                return
        elif action.kind == KIND_DISK_CORRUPT:
            disk = self.network.disks.get(action.node_id)
            if disk is None or not disk.corrupt(action.file):
                return
        elif action.kind == KIND_REPLICA_KILL:
            victims = self._resolve_replicas(action.key, action.count)
            if not victims:
                return
            for node_id in victims:
                self.network.nodes[node_id].crash()
                self.history.append(FailureEvent(now, KIND_CRASH, node_id))
        # Loss windows and latency spikes were installed at apply time
        # (they are time-scoped); this event just marks their onset.
        self.network.stats.record_fault(action.kind)
        self.history.append(FailureEvent(now, action.kind, action.node_id))

    def _resolve_replicas(self, key: str, count: int) -> list[str]:
        """First ``count`` alive replicas of ``key``, per the live ring."""
        for node_id in sorted(self.network.nodes):
            node = self.network.nodes[node_id]
            shard = getattr(node, "shard", None)
            if (
                node.alive
                and getattr(node, "active", True)  # skip dormant standbys
                and shard is not None
                and shard.active()
            ):
                replicas = [
                    rid for rid in shard.replicas_for(key)
                    if (peer := self.network.nodes.get(rid)) is not None and peer.alive
                ]
                return replicas[:count]
        return []

    def counts(self) -> dict[str, int]:
        """Executed fault events by kind."""
        counts: dict[str, int] = {}
        for event in self.history:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
