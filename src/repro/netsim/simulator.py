"""Deterministic discrete-event scheduler.

The simulator is the single source of time and randomness for a run.
Events are ``(time, sequence, callback)`` triples on a binary heap; the
monotonically increasing sequence number breaks ties so that two events
scheduled for the same instant always fire in scheduling order, which makes
whole-system runs deterministic under a fixed seed.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError
from repro.obs.tracing import TraceRecorder


@dataclass(order=True)
class _Event:
    """A single scheduled callback. Ordered by (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """The simulated time at which the event will fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        self._event.cancelled = True


class PeriodicHandle:
    """Handle for a repeating task created with :meth:`Simulator.every`."""

    __slots__ = ("_sim", "_interval", "_fn", "_next", "_stopped")

    def __init__(self, sim: "Simulator", interval: float, fn: Callable[[], None]) -> None:
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._stopped = False
        self._next: EventHandle | None = None

    def _fire(self) -> None:
        if self._stopped:
            return
        self._fn()
        if not self._stopped:
            self._next = self._sim.schedule(self._interval, self._fire)

    def start(self, initial_delay: float | None = None) -> "PeriodicHandle":
        """Arm the periodic task; first firing after ``initial_delay``
        (defaults to one full interval)."""
        delay = self._interval if initial_delay is None else initial_delay
        self._next = self._sim.schedule(delay, self._fire)
        return self

    def stop(self) -> None:
        """Stop the task; any pending firing is cancelled. Idempotent."""
        self._stopped = True
        if self._next is not None:
            self._next.cancel()


class Simulator:
    """Heap-based discrete-event simulator with a seeded RNG.

    Parameters
    ----------
    seed:
        Seed for the simulator's private :class:`random.Random`. All
        stochastic behaviour in a run (loss, churn, workload sampling)
        must draw from :attr:`rng` so that a seed fully determines a run.
    """

    def __init__(self, seed: int = 0) -> None:
        self._heap: list[_Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self.seed = seed
        self.rng = random.Random(seed)
        self.events_processed = 0
        #: Causal trace recorder for this run; spans/events are stamped
        #: with ``self.now``, so trace output is a pure function of the
        #: seed (see the determinism contract in :mod:`repro.obs.tracing`).
        self.trace = TraceRecorder(lambda: self._now)

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(f"cannot schedule at {when} < now={self._now}")
        self._seq += 1
        bound = (lambda: callback(*args)) if args else callback
        event = _Event(time=when, seq=self._seq, callback=bound)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        initial_delay: float | None = None,
    ) -> PeriodicHandle:
        """Run ``callback`` every ``interval`` seconds until stopped."""
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        return PeriodicHandle(self, interval, callback).start(initial_delay)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired. Returns the simulated time afterwards.

        When ``until`` is given, time is advanced to exactly ``until`` even
        if the last event fired earlier, so periodic measurements can use
        ``sim.now`` as the window length.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback()
                self.events_processed += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def step(self, until: float | None = None) -> bool:
        """Process exactly one pending (non-cancelled) event.

        Returns ``True`` if an event fired; ``False`` if the heap is empty
        or (with ``until``) the next event lies beyond ``until``, in which
        case that event is left in the heap and time does not advance —
        callers stepping toward a deadline never execute past it.
        """
        while self._heap:
            if self._heap[0].cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and self._heap[0].time > until:
                return False
            event = heapq.heappop(self._heap)
            self._now = event.time
            event.callback()
            self.events_processed += 1
            return True
        return False

    def advance_to(self, when: float) -> float:
        """Advance the clock to ``when`` without firing any events.

        Only legal when no pending event is scheduled at or before
        ``when`` (use :meth:`run` or :meth:`step` to execute those first).
        Used to close out a bounded window — e.g. a synchronous discovery
        deadline — so ``now`` reflects the full window length.
        """
        if when < self._now:
            raise SimulationError(f"cannot advance to {when} < now={self._now}")
        for event in self._heap:
            if not event.cancelled and event.time <= when:
                raise SimulationError(
                    f"cannot advance past pending event at t={event.time}"
                )
        self._now = when
        return self._now

    def pending(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return sum(1 for e in self._heap if not e.cancelled)

    def clear(self) -> None:
        """Drop all pending events without running them."""
        self._heap.clear()
