"""Base class for protocol agents.

A :class:`Node` is anything with an address on the simulated network:
client nodes, service nodes, registry nodes, baseline registries. The
paper's roles are implemented as subclasses in :mod:`repro.core`.

Nodes are *fail-stop*: :meth:`crash` silently drops all in-flight timers
and future deliveries; :meth:`restart` brings the node back with empty
volatile state (subclasses override :meth:`on_restart` to re-bootstrap,
mirroring the paper's "service node must try to find another connection
point" responsibility).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import NetworkError
from repro.netsim.messages import Envelope
from repro.obs.tracing import TRACE_ID_HEADER, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.network import Network
    from repro.netsim.simulator import EventHandle, PeriodicHandle, Simulator


class Timer:
    """A cancellable one-shot timer bound to a node's lifetime.

    The callback never fires if the node crashed (or the timer was
    cancelled) between scheduling and expiry.
    """

    __slots__ = ("_node", "_handle", "_fired")

    def __init__(self, node: "Node", delay: float, fn: Callable[[], None]) -> None:
        self._node = node
        self._fired = False

        def guarded() -> None:
            self._fired = True
            # Drop the bookkeeping reference so long-lived nodes do not
            # accumulate fired timers (a slow leak under heavy retrying).
            try:
                node._timers.remove(self)
            except ValueError:
                pass
            if node.alive:
                fn()

        self._handle: "EventHandle" = node.sim.schedule(delay, guarded)
        node._timers.append(self)

    @property
    def pending(self) -> bool:
        """True until the timer fires or is cancelled."""
        return not self._fired and not self._handle.cancelled

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        self._handle.cancel()


class Node:
    """A network endpoint with mailbox dispatch and crash/restart semantics.

    Message dispatch is by naming convention: an envelope with
    ``msg_type="query"`` is delivered to ``self.handle_query(envelope)``
    if that method exists, otherwise to :meth:`handle_message`. Unknown
    message types are counted and silently discarded — the paper's "nodes
    quickly filter and silently discard messages they cannot understand".
    """

    #: Role tag used by experiments for reporting; subclasses override.
    role = "node"

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.alive = True
        self.network: "Network | None" = None
        self.lan_name: str | None = None
        self._timers: list[Timer] = []
        self._periodics: list["PeriodicHandle"] = []
        self.unknown_messages = 0
        self.crash_count = 0
        #: Causal context of the envelope currently being handled, set by
        #: :meth:`receive` for the duration of the dispatch. Synchronous
        #: sends made inside a handler inherit it automatically; work
        #: completed later from timers must thread the context explicitly.
        self._trace_ctx: tuple[int, int] | None = None

    # -- wiring ---------------------------------------------------------

    @property
    def sim(self) -> "Simulator":
        """The simulator this node is attached to."""
        if self.network is None:
            raise NetworkError(f"node {self.node_id!r} is not attached to a network")
        return self.network.sim

    @property
    def trace(self) -> "TraceRecorder | None":
        """This run's trace recorder (``None`` while unattached)."""
        return self.network.sim.trace if self.network is not None else None

    def attached(self, network: "Network", lan_name: str) -> None:
        """Called by :meth:`Network.add_node`; do not call directly."""
        self.network = network
        self.lan_name = lan_name

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Begin protocol activity. Subclasses override; default is a no-op."""

    def cancel_tasks(self) -> None:
        """Cancel every pending timer and periodic task on this node.

        Used by :meth:`crash` and by role changes (e.g. a standby registry
        demoting itself) that must stop activity without dying.
        """
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        for periodic in self._periodics:
            periodic.stop()
        self._periodics.clear()

    def crash(self) -> None:
        """Fail-stop: stop all timers and ignore all future deliveries."""
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        self.cancel_tasks()
        self.on_crash()
        if self.network is not None and self.network.health.active:
            self.network.health.on_node_crash(self.node_id)

    def restart(self) -> None:
        """Bring a crashed node back up with empty volatile state."""
        if self.alive:
            return
        self.alive = True
        self.on_restart()
        if self.network is not None and self.network.health.active:
            self.network.health.on_node_restart(self.node_id)

    def on_crash(self) -> None:
        """Hook invoked after a crash. Default: no-op."""

    def on_restart(self) -> None:
        """Hook invoked after a restart (re-bootstrap here). Default: no-op."""

    def on_moved(self, old_lan: str, new_lan: str) -> None:
        """Hook invoked after the node roamed to another LAN. Default: no-op."""

    # -- timers ---------------------------------------------------------

    def after(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn`` once after ``delay`` seconds, unless this node crashes."""
        return Timer(self, delay, fn)

    def every(
        self, interval: float, fn: Callable[[], None], *, initial_delay: float | None = None
    ) -> "PeriodicHandle":
        """Run ``fn`` every ``interval`` seconds while this node is alive."""

        def guarded() -> None:
            if self.alive:
                fn()

        handle = self.sim.every(interval, guarded, initial_delay=initial_delay)
        self._periodics.append(handle)
        return handle

    # -- messaging ------------------------------------------------------

    def send(
        self,
        dst: str,
        msg_type: str,
        payload: Any = None,
        *,
        payload_type: str | None = None,
        headers: dict[str, Any] | None = None,
        hops: int = 0,
    ) -> Envelope:
        """Unicast a message to node ``dst``. Returns the envelope sent.

        ``hops`` seeds the envelope's hop counter: forwarding handlers
        that repackage a payload into a *new* envelope (query fan-out,
        walks) pass the incoming ``envelope.hops + 1`` so path length
        survives re-enveloping.
        """
        if self.network is None:
            raise NetworkError(f"node {self.node_id!r} is not attached to a network")
        envelope = Envelope(
            msg_type=msg_type,
            src=self.node_id,
            dst=dst,
            payload=payload,
            payload_type=payload_type,
            headers=self._with_trace(headers),
            hops=hops,
        )
        self.network.unicast(envelope)
        return envelope

    def multicast(
        self,
        msg_type: str,
        payload: Any = None,
        *,
        payload_type: str | None = None,
        headers: dict[str, Any] | None = None,
    ) -> Envelope:
        """Multicast a message on this node's own LAN (local scope only —
        the paper rules out WAN multicast as "too heavy a burden")."""
        if self.network is None:
            raise NetworkError(f"node {self.node_id!r} is not attached to a network")
        envelope = Envelope(
            msg_type=msg_type,
            src=self.node_id,
            dst=None,
            payload=payload,
            payload_type=payload_type,
            headers=self._with_trace(headers),
        )
        self.network.multicast(envelope)
        return envelope

    def _with_trace(self, headers: dict[str, Any] | None) -> dict[str, Any]:
        """Copy ``headers``, propagating the active causal context.

        Explicit trace headers win; otherwise a send made while handling
        a traced envelope inherits that envelope's context, so response
        and forwarding hops stay on the originating trace without every
        call site knowing about tracing.
        """
        out = dict(headers or {})
        if self._trace_ctx is not None and TRACE_ID_HEADER not in out:
            TraceRecorder.inject(out, self._trace_ctx)
        return out

    def forward(self, envelope: Envelope, dst: str) -> Envelope:
        """Re-send ``envelope`` to ``dst`` with this node as the hop source."""
        if self.network is None:
            raise NetworkError(f"node {self.node_id!r} is not attached to a network")
        copy = envelope.forwarded(self.node_id, dst)
        self.network.unicast(copy)
        return copy

    # -- dispatch -------------------------------------------------------

    def receive(self, envelope: Envelope) -> None:
        """Entry point called by the network on delivery."""
        if not self.alive:
            return
        if self.admission_intercept(envelope):
            return
        self.dispatch(envelope)

    def admission_intercept(self, envelope: Envelope) -> bool:
        """Hook called before dispatch; return True to take ownership.

        Nodes with a bounded service model (registries under admission
        control) override this to queue, delay, or shed the message.
        The default admits everything synchronously.
        """
        return False

    def dispatch(self, envelope: Envelope) -> None:
        """Route ``envelope`` to its handler (possibly after queueing)."""
        self._trace_ctx = TraceRecorder.extract(envelope.headers)
        try:
            handler = getattr(self, f"handle_{envelope.msg_type.replace('-', '_')}", None)
            if handler is not None:
                handler(envelope)
            else:
                self.handle_message(envelope)
        finally:
            self._trace_ctx = None

    def handle_message(self, envelope: Envelope) -> None:
        """Fallback handler for message types without a dedicated method."""
        self.unknown_messages += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"<{type(self).__name__} {self.node_id} lan={self.lan_name} {state}>"
