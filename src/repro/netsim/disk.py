"""Simulated per-node durable storage.

A :class:`SimDisk` is a tiny named-blob store owned by the
:class:`~repro.netsim.network.Network`, keyed by node id — so its
contents survive a node's fail-stop crash/restart cycle exactly like a
real machine's disk survives a process crash. All operations are
synchronous and cost zero simulated time: durability never perturbs
event ordering, which keeps same-seed runs byte-identical whether a
deployment persists state or not.

The disk is also the injection point for *storage* faults
(:mod:`repro.netsim.faults`): :meth:`tear_tail` models a write that was
in flight when the power went ("torn write" — the tail of the last
append is missing), and :meth:`corrupt` models silent media corruption
(one byte flipped). Both are deterministic — no randomness — so fault
scenarios replay bit-identically.
"""

from __future__ import annotations


class SimDisk:
    """Named byte blobs with deterministic fault injection."""

    def __init__(self) -> None:
        self._files: dict[str, bytearray] = {}
        #: Size of the most recent append/write per file, so a torn write
        #: can chop *within* the last record rather than at an arbitrary
        #: historical offset.
        self._last_write: dict[str, int] = {}
        self.torn_writes = 0
        self.corruptions = 0

    # -- storage port --------------------------------------------------------

    def read(self, name: str) -> bytes | None:
        """The full contents of ``name``, or ``None`` if absent."""
        data = self._files.get(name)
        return bytes(data) if data is not None else None

    def write(self, name: str, data: bytes) -> None:
        """Replace ``name`` wholesale (atomic rewrite)."""
        self._files[name] = bytearray(data)
        self._last_write[name] = len(data)

    def append(self, name: str, data: bytes) -> None:
        """Append ``data`` to ``name``, creating it if absent."""
        self._files.setdefault(name, bytearray()).extend(data)
        self._last_write[name] = len(data)

    def delete(self, name: str) -> None:
        """Remove ``name`` (no-op if absent)."""
        self._files.pop(name, None)
        self._last_write.pop(name, None)

    def names(self) -> list[str]:
        """Stored file names, sorted."""
        return sorted(self._files)

    def size(self, name: str) -> int:
        """Bytes stored under ``name`` (0 if absent)."""
        data = self._files.get(name)
        return len(data) if data is not None else 0

    # -- fault injection -----------------------------------------------------

    def tear_tail(self, name: str) -> int:
        """Truncate half of the last write to ``name`` (torn write).

        Returns the number of bytes chopped (0 when there was nothing to
        tear). Deterministic: always ``ceil(last_write / 2)`` bytes, at
        least one.
        """
        data = self._files.get(name)
        if not data:
            return 0
        last = self._last_write.get(name) or len(data)
        cut = min(len(data), max(1, (last + 1) // 2))
        del data[len(data) - cut:]
        self.torn_writes += 1
        return cut

    def corrupt(self, name: str) -> bool:
        """Flip one byte in the middle of ``name`` (media corruption).

        Returns False when the file is absent or empty. Deterministic:
        always the byte at ``len // 2``.
        """
        data = self._files.get(name)
        if not data:
            return False
        data[len(data) // 2] ^= 0xFF
        self.corruptions += 1
        return True
