"""Failure and churn models.

Dynamic environments are "surroundings with continuous change … both
services and registries can come and go. In other words, they are
transient." This module provides the three ways a run exercises that
transience:

* :class:`CrashSchedule` — scripted crash/restart events at known times
  (used by deterministic integration tests and the E6 fallback timeline).
* :class:`ChurnProcess` — a Poisson process of crashes with exponential
  downtimes over a pool of nodes (E4 staleness vs churn rate).
* :class:`AttackSchedule` — progressive removal of nodes, either uniformly
  at random or targeted at the most valuable nodes first (E3/E11, the
  random-vs-targeted robustness claims of the complex-networks work the
  paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import SimulationError
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator


@dataclass
class FailureEvent:
    """One entry in a failure history: ``kind`` is ``"crash"`` or ``"restart"``."""

    time: float
    kind: str
    node_id: str


class CrashSchedule:
    """Scripted crash and restart events.

    Example
    -------
    >>> schedule = CrashSchedule(sim, network)         # doctest: +SKIP
    >>> schedule.crash_at(10.0, "registry-0")          # doctest: +SKIP
    >>> schedule.restart_at(30.0, "registry-0")        # doctest: +SKIP
    """

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.history: list[FailureEvent] = []

    def crash_at(self, when: float, node_id: str) -> None:
        """Crash ``node_id`` at absolute time ``when``."""
        self.sim.schedule_at(when, self._crash, node_id)

    def restart_at(self, when: float, node_id: str) -> None:
        """Restart ``node_id`` at absolute time ``when``."""
        self.sim.schedule_at(when, self._restart, node_id)

    def _crash(self, node_id: str) -> None:
        self.network.node(node_id).crash()
        self.history.append(FailureEvent(self.sim.now, "crash", node_id))

    def _restart(self, node_id: str) -> None:
        self.network.node(node_id).restart()
        self.history.append(FailureEvent(self.sim.now, "restart", node_id))


class ChurnProcess:
    """Poisson churn over a pool of nodes.

    Crash events arrive with exponential inter-arrival times of mean
    ``1 / rate``; each event crashes one uniformly chosen *currently alive*
    pool member. Crashed members restart after an exponential downtime of
    mean ``mean_downtime`` unless ``permanent`` is set, in which case they
    never return (the paper's "services … disappear abruptly").

    Parameters
    ----------
    rate:
        Expected crashes per second across the whole pool.
    mean_downtime:
        Mean seconds a crashed node stays down.
    permanent:
        If true, crashed nodes never restart.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pool: Iterable[str],
        *,
        rate: float,
        mean_downtime: float = 30.0,
        permanent: bool = False,
    ) -> None:
        if rate <= 0:
            raise SimulationError(f"churn rate must be positive, got {rate}")
        if mean_downtime < 0:
            raise SimulationError(f"mean_downtime must be non-negative, got {mean_downtime}")
        self.sim = sim
        self.network = network
        self.pool = sorted(pool)
        self.rate = rate
        self.mean_downtime = mean_downtime
        self.permanent = permanent
        self.history: list[FailureEvent] = []
        self._running = False

    def start(self) -> "ChurnProcess":
        """Begin generating churn events."""
        self._running = True
        self._schedule_next()
        return self

    def stop(self) -> None:
        """Stop generating new crash events (pending restarts still fire)."""
        self._running = False

    def _schedule_next(self) -> None:
        delay = self.sim.rng.expovariate(self.rate)
        self.sim.schedule(delay, self._next_event)

    def _next_event(self) -> None:
        if not self._running:
            return
        alive = [nid for nid in self.pool if self.network.node(nid).alive]
        if alive:
            victim = self.sim.rng.choice(alive)
            self.network.node(victim).crash()
            self.history.append(FailureEvent(self.sim.now, "crash", victim))
            if not self.permanent:
                downtime = self.sim.rng.expovariate(1.0 / self.mean_downtime) \
                    if self.mean_downtime > 0 else 0.0
                self.sim.schedule(downtime, self._restart, victim)
        self._schedule_next()

    def _restart(self, node_id: str) -> None:
        node = self.network.node(node_id)
        if not node.alive:
            node.restart()
            self.history.append(FailureEvent(self.sim.now, "restart", node_id))

    def crashes(self) -> int:
        """Number of crash events generated so far."""
        return sum(1 for event in self.history if event.kind == "crash")


@dataclass
class AttackSchedule:
    """Progressive node removal: random failures or targeted attacks.

    ``strategy="random"`` shuffles the target list with the simulator RNG;
    ``strategy="targeted"`` removes the highest-value nodes first according
    to ``value`` (default: every node is equal, so targeted degenerates to
    list order — callers pass e.g. registry degree).

    Nodes are crashed permanently, one every ``interval`` seconds starting
    at ``start_time``.
    """

    sim: Simulator
    network: Network
    targets: Sequence[str]
    strategy: str = "random"
    interval: float = 1.0
    start_time: float = 0.0
    value: Callable[[str], float] | None = None
    history: list[FailureEvent] = field(default_factory=list)

    def plan(self) -> list[str]:
        """The removal order this schedule will use."""
        targets = list(self.targets)
        if self.strategy == "random":
            self.sim.rng.shuffle(targets)
        elif self.strategy == "targeted":
            key = self.value or (lambda _node_id: 0.0)
            # Highest value first; node id breaks ties deterministically.
            targets.sort(key=lambda nid: (-key(nid), nid))
        else:
            raise SimulationError(f"unknown attack strategy {self.strategy!r}")
        return targets

    def launch(self) -> list[str]:
        """Schedule the removals; returns the removal order."""
        order = self.plan()
        for index, node_id in enumerate(order):
            when = self.start_time + index * self.interval
            self.sim.schedule_at(when, self._crash, node_id)
        return order

    def _crash(self, node_id: str) -> None:
        node = self.network.node(node_id)
        if node.alive:
            node.crash()
            self.history.append(FailureEvent(self.sim.now, "crash", node_id))
