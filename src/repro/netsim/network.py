"""Network topology: LAN segments joined by a WAN.

The model follows the paper's Figure 4: nodes live on LANs (each LAN is a
multicast domain), and LANs that are *WAN-connected* can exchange unicast
traffic with each other. WAN multicast does not exist ("the use of
multicast places a too heavy burden on the network").

Partitions are modelled at LAN granularity: every LAN belongs to a
partition group, and cross-group unicast is dropped. This captures the
paper's "network disconnect between branches" scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import NetworkError, UnknownNodeError
from repro.netsim.disk import SimDisk
from repro.netsim.messages import Envelope, SizeModel
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.netsim.stats import TrafficStats
from repro.obs.health import HealthMonitor
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, HOP_BUCKETS, MetricsRegistry
from repro.obs.tracing import TraceRecorder


@dataclass(frozen=True)
class LossWindow:
    """A timed burst of extra delivery loss on part of the network.

    ``lan`` scopes the burst to traffic touching one LAN; ``link`` to
    traffic between a specific pair of LANs; both ``None`` means global.
    ``rate`` may be 1.0 (total blackout for the window). Composes with the
    ambient :attr:`Network.loss_rate` as independent drop probabilities.
    """

    start: float
    end: float
    rate: float
    lan: str | None = None
    link: frozenset[str] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise NetworkError(f"loss window rate must be in [0, 1], got {self.rate}")
        if self.end <= self.start:
            raise NetworkError(f"loss window must end after it starts "
                               f"({self.start} .. {self.end})")

    def applies(self, now: float, src_lan: str, dst_lan: str) -> bool:
        """Whether this window affects a delivery between the LANs at ``now``."""
        if not self.start <= now < self.end:
            return False
        if self.lan is not None:
            return self.lan in (src_lan, dst_lan)
        if self.link is not None:
            return self.link == frozenset((src_lan, dst_lan))
        return True


@dataclass(frozen=True)
class LatencySpike:
    """A timed additive delivery-latency increase, scoped like a
    :class:`LossWindow` (per-LAN, per-link, or global)."""

    start: float
    end: float
    extra: float
    lan: str | None = None
    link: frozenset[str] | None = None

    def __post_init__(self) -> None:
        if self.extra < 0:
            raise NetworkError(f"latency spike must be non-negative, got {self.extra}")
        if self.end <= self.start:
            raise NetworkError(f"latency spike must end after it starts "
                               f"({self.start} .. {self.end})")

    def applies(self, now: float, src_lan: str, dst_lan: str) -> bool:
        """Whether this spike affects a delivery between the LANs at ``now``."""
        if not self.start <= now < self.end:
            return False
        if self.lan is not None:
            return self.lan in (src_lan, dst_lan)
        if self.link is not None:
            return self.link == frozenset((src_lan, dst_lan))
        return True


@dataclass
class Lan:
    """One LAN segment: a local multicast domain.

    Attributes
    ----------
    name:
        Unique LAN identifier.
    wan_connected:
        Whether nodes on this LAN can reach other LANs at all.
    partition_group:
        LANs in different groups cannot exchange traffic (see
        :meth:`Network.partition`).
    bandwidth_bps:
        Shared-medium capacity in bits/second (``None`` = unbounded).
        Models the paper's "wireless connections with low network
        capacity": every transmission originating on this LAN serializes
        on the medium, so large (semantic) payloads add real queueing and
        transmission delay.
    """

    name: str
    wan_connected: bool = True
    partition_group: int = 0
    bandwidth_bps: float | None = None
    node_ids: set[str] = field(default_factory=set)
    #: Simulated time until which the shared medium is transmitting.
    busy_until: float = 0.0

    def transmission_done(self, now: float, size_bytes: int) -> float:
        """When a ``size_bytes`` frame sent at ``now`` finishes on air.

        FIFO medium: the frame starts when the medium frees and occupies
        it for ``size * 8 / bandwidth`` seconds. Unbounded media return
        ``now`` (zero transmission delay).
        """
        if self.bandwidth_bps is None:
            return now
        start = max(now, self.busy_until)
        self.busy_until = start + (size_bytes * 8.0) / self.bandwidth_bps
        return self.busy_until


class Network:
    """The simulated internetwork: nodes, LANs, and the transport.

    Parameters
    ----------
    sim:
        The simulator providing time and randomness.
    size_model:
        Byte-size model applied to every message.
    lan_latency / wan_latency:
        One-way delivery delays in seconds.
    loss_rate:
        Independent per-delivery drop probability (models lossy wireless
        links). Applied per *receiver* for multicast.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        size_model: SizeModel | None = None,
        lan_latency: float = 0.001,
        wan_latency: float = 0.05,
        loss_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.size_model = size_model or SizeModel()
        self.lan_latency = lan_latency
        self.wan_latency = wan_latency
        self.loss_rate = loss_rate
        self.stats = TrafficStats()
        #: The run's metrics facade. The transport feeds per-message-type
        #: delivery-latency and hop-count histograms; protocol agents add
        #: their own instruments (query latency, matchmaker work) through
        #: the same registry. TrafficStats mirrors its retry/fault/
        #: recovery/drop counters here so event rates are queryable too.
        self.metrics = MetricsRegistry()
        self.stats.metrics = self.metrics
        #: The run's health monitor (flight recorders, SLO windows,
        #: watchdogs — see :mod:`repro.obs.health`). Constructed inert:
        #: until :meth:`~repro.obs.health.HealthMonitor.configure` enables
        #: it, ``active`` is False and every feed call short-circuits.
        self.health = HealthMonitor(lambda: sim.now, self.metrics,
                                    trace=sim.trace)
        self.nodes: dict[str, Node] = {}
        self.lans: dict[str, Lan] = {}
        #: Fault-injection state (see :mod:`repro.netsim.faults`): timed
        #: loss bursts and latency spikes consulted on every delivery.
        self.loss_windows: list[LossWindow] = []
        self.latency_spikes: list[LatencySpike] = []
        #: Per-node durable storage (see :mod:`repro.netsim.disk`),
        #: created lazily by :meth:`disk` — the dict stays empty unless
        #: a node opts into durability. Keyed by node id, owned by the
        #: network, so contents survive node crash/restart like a real
        #: disk survives a process crash.
        self.disks: dict[str, SimDisk] = {}

    # -- construction ---------------------------------------------------

    def add_lan(self, name: str, *, wan_connected: bool = True,
                bandwidth_bps: float | None = None) -> Lan:
        """Create a LAN segment. Names must be unique.

        ``bandwidth_bps`` bounds the LAN's shared medium (tactical-radio
        style); ``None`` keeps it unbounded.
        """
        if name in self.lans:
            raise NetworkError(f"duplicate LAN name {name!r}")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise NetworkError(f"bandwidth must be positive, got {bandwidth_bps}")
        lan = Lan(name=name, wan_connected=wan_connected,
                  bandwidth_bps=bandwidth_bps)
        self.lans[name] = lan
        return lan

    def add_node(self, node: Node, lan_name: str) -> Node:
        """Attach ``node`` to LAN ``lan_name``. Node ids must be unique."""
        if node.node_id in self.nodes:
            raise NetworkError(f"duplicate node id {node.node_id!r}")
        if lan_name not in self.lans:
            raise NetworkError(f"unknown LAN {lan_name!r}")
        self.nodes[node.node_id] = node
        self.lans[lan_name].node_ids.add(node.node_id)
        node.attached(self, lan_name)
        return node

    def move_node(self, node_id: str, new_lan: str) -> None:
        """Move a node to another LAN (mobility).

        Dynamic environments include *roaming*: "members from several
        agencies, potentially at different locations" whose devices join
        whatever network segment they are near. The node keeps its state;
        its :meth:`~repro.netsim.node.Node.on_moved` hook fires so
        protocol agents can re-bootstrap (re-probe, republish).
        """
        node = self.node(node_id)
        if new_lan not in self.lans:
            raise NetworkError(f"unknown LAN {new_lan!r}")
        old_lan = node.lan_name
        if old_lan == new_lan:
            return
        if old_lan is not None and old_lan in self.lans:
            self.lans[old_lan].node_ids.discard(node_id)
        self.lans[new_lan].node_ids.add(node_id)
        node.lan_name = new_lan
        node.on_moved(old_lan or "", new_lan)

    def remove_node(self, node_id: str) -> None:
        """Permanently remove a node (it has *departed*, not merely crashed)."""
        node = self.nodes.pop(node_id, None)
        if node is None:
            raise UnknownNodeError(f"unknown node {node_id!r}")
        node.crash()
        if node.lan_name and node.lan_name in self.lans:
            self.lans[node.lan_name].node_ids.discard(node_id)

    def node(self, node_id: str) -> Node:
        """Look up a node by id."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise UnknownNodeError(f"unknown node {node_id!r}") from None

    def nodes_on_lan(self, lan_name: str) -> list[Node]:
        """All nodes attached to ``lan_name`` (alive or not), sorted by id."""
        lan = self.lans.get(lan_name)
        if lan is None:
            raise NetworkError(f"unknown LAN {lan_name!r}")
        return [self.nodes[nid] for nid in sorted(lan.node_ids)]

    def disk(self, node_id: str) -> SimDisk:
        """The durable per-node disk for ``node_id`` (created on first use).

        Unlike the node object's volatile attributes, the disk is owned
        by the network, so a fail-stop crash/restart cycle leaves its
        contents intact. :mod:`repro.netsim.faults` reaches disks here to
        inject torn writes and corruption.
        """
        disk = self.disks.get(node_id)
        if disk is None:
            disk = self.disks[node_id] = SimDisk()
        return disk

    # -- partitions -----------------------------------------------------

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the WAN: LANs in different groups cannot exchange traffic.

        ``groups`` is an iterable of iterables of LAN names; every LAN must
        appear in exactly one group.
        """
        assignment: dict[str, int] = {}
        for index, group in enumerate(groups):
            for lan_name in group:
                if lan_name not in self.lans:
                    raise NetworkError(f"unknown LAN {lan_name!r} in partition spec")
                if lan_name in assignment:
                    raise NetworkError(f"LAN {lan_name!r} appears in two partition groups")
                assignment[lan_name] = index
        missing = set(self.lans) - set(assignment)
        if missing:
            raise NetworkError(f"partition spec missing LANs: {sorted(missing)}")
        for lan_name, group_index in assignment.items():
            self.lans[lan_name].partition_group = group_index

    def heal_partition(self) -> None:
        """Rejoin all LANs into one partition group."""
        for lan in self.lans.values():
            lan.partition_group = 0

    def reachable(self, src_id: str, dst_id: str) -> bool:
        """Whether a unicast from ``src_id`` can currently reach ``dst_id``.

        Same-LAN traffic always flows; cross-LAN traffic requires both LANs
        to be WAN-connected and in the same partition group.
        """
        src = self.nodes.get(src_id)
        dst = self.nodes.get(dst_id)
        if src is None or dst is None or src.lan_name is None or dst.lan_name is None:
            return False
        if src.lan_name == dst.lan_name:
            return True
        src_lan = self.lans[src.lan_name]
        dst_lan = self.lans[dst.lan_name]
        return (
            src_lan.wan_connected
            and dst_lan.wan_connected
            and src_lan.partition_group == dst_lan.partition_group
        )

    def is_wan(self, src_id: str, dst_id: str) -> bool:
        """Whether traffic between the two nodes crosses the WAN."""
        src = self.nodes.get(src_id)
        dst = self.nodes.get(dst_id)
        if src is None or dst is None:
            return False
        return src.lan_name != dst.lan_name

    # -- fault hooks -----------------------------------------------------

    def add_loss_window(self, window: LossWindow) -> None:
        """Install a timed loss burst (normally via a FaultPlan)."""
        for name in filter(None, [window.lan, *(window.link or ())]):
            if name not in self.lans:
                raise NetworkError(f"unknown LAN {name!r} in loss window")
        self.loss_windows.append(window)

    def add_latency_spike(self, spike: LatencySpike) -> None:
        """Install a timed latency spike (normally via a FaultPlan)."""
        for name in filter(None, [spike.lan, *(spike.link or ())]):
            if name not in self.lans:
                raise NetworkError(f"unknown LAN {name!r} in latency spike")
        self.latency_spikes.append(spike)

    def _fault_loss(self, src_lan: str, dst_lan: str) -> float:
        """Combined drop probability of the loss windows active right now."""
        if not self.loss_windows:
            return 0.0
        now = self.sim.now
        pass_probability = 1.0
        for window in self.loss_windows:
            if window.applies(now, src_lan, dst_lan):
                pass_probability *= 1.0 - window.rate
        return 1.0 - pass_probability

    def _extra_latency(self, src_lan: str, dst_lan: str) -> float:
        """Additional delivery latency from active spikes."""
        if not self.latency_spikes:
            return 0.0
        now = self.sim.now
        return sum(
            spike.extra
            for spike in self.latency_spikes
            if spike.applies(now, src_lan, dst_lan)
        )

    # -- transport ------------------------------------------------------

    def unicast(self, envelope: Envelope) -> None:
        """Send ``envelope`` to its ``dst``; delivery is asynchronous.

        The send is always accounted (the sender transmits regardless);
        unreachable destinations, loss, and crashed receivers turn into
        recorded drops.
        """
        if envelope.dst is None:
            raise NetworkError("unicast envelope has no destination")
        size = self.size_model.message_size(envelope.payload)
        envelope.size_bytes = size
        envelope.sent_at = self.sim.now
        wan = self.is_wan(envelope.src, envelope.dst)
        self.stats.record_send(envelope.msg_type, envelope.src, size, wan=wan, multicast=False)
        if not self.reachable(envelope.src, envelope.dst):
            self.stats.record_drop("unreachable")
            self._trace_drop(envelope, "unreachable")
            return
        if self.loss_rate and self.sim.rng.random() < self.loss_rate:
            self.stats.record_drop("loss")
            self._trace_drop(envelope, "loss")
            return
        sender = self.nodes.get(envelope.src)
        receiver = self.nodes.get(envelope.dst)
        src_lan = sender.lan_name if sender is not None else ""
        dst_lan = receiver.lan_name if receiver is not None else ""
        fault_loss = self._fault_loss(src_lan or "", dst_lan or "")
        if fault_loss and self.sim.rng.random() < fault_loss:
            self.stats.record_drop("fault-loss")
            self._trace_drop(envelope, "fault-loss")
            return
        latency = self.wan_latency if wan else self.lan_latency
        latency += self._extra_latency(src_lan or "", dst_lan or "")
        # The sender's LAN medium serializes the transmission (the uplink
        # is the bottleneck for narrow-band deployments).
        done_at = self.sim.now
        if sender is not None and sender.lan_name in self.lans:
            done_at = self.lans[sender.lan_name].transmission_done(
                self.sim.now, size
            )
        self.sim.schedule_at(done_at + latency, self._deliver,
                             envelope, envelope.dst)

    def multicast(self, envelope: Envelope) -> None:
        """Deliver ``envelope`` to every other node on the sender's LAN.

        One transmission is accounted (broadcast medium); each receiver
        gets its *own envelope copy*, so a handler mutating headers or
        routing metadata cannot contaminate sibling deliveries.
        """
        sender = self.nodes.get(envelope.src)
        if sender is None or sender.lan_name is None:
            raise UnknownNodeError(f"unknown multicast sender {envelope.src!r}")
        size = self.size_model.message_size(envelope.payload)
        envelope.size_bytes = size
        envelope.sent_at = self.sim.now
        self.stats.record_send(envelope.msg_type, envelope.src, size, wan=False, multicast=True)
        lan_name = sender.lan_name
        lan = self.lans[lan_name]
        done_at = lan.transmission_done(self.sim.now, size)
        fault_loss = self._fault_loss(lan_name, lan_name)
        latency = self.lan_latency + self._extra_latency(lan_name, lan_name)
        for dst_id in sorted(lan.node_ids):
            if dst_id == envelope.src:
                continue
            if self.loss_rate and self.sim.rng.random() < self.loss_rate:
                self.stats.record_drop("loss")
                self._trace_drop(envelope, "loss", dst=dst_id)
                continue
            if fault_loss and self.sim.rng.random() < fault_loss:
                self.stats.record_drop("fault-loss")
                self._trace_drop(envelope, "fault-loss", dst=dst_id)
                continue
            self.sim.schedule_at(done_at + latency, self._deliver,
                                 envelope.copy_for(dst_id), dst_id)

    def _deliver(self, envelope: Envelope, dst_id: str) -> None:
        """Delivery event: hand the envelope to the destination if it is up."""
        if self.health.active:
            # Keep the SLO windows rolling with traffic so burn rates are
            # current even between watchdog ticks. No-op when health is off.
            self.health.advance(self.sim.now)
        dst = self.nodes.get(dst_id)
        if dst is None or not dst.alive:
            self.stats.record_drop("dead-dst")
            self._trace_drop(envelope, "dead-dst", dst=dst_id)
            return
        if not self.reachable(envelope.src, dst_id):
            # A partition formed while the message was in flight.
            self.stats.record_drop("partition-in-flight")
            self._trace_drop(envelope, "partition-in-flight", dst=dst_id)
            return
        self.stats.record_delivery(dst_id, envelope.size_bytes)
        latency = self.sim.now - envelope.sent_at
        self.metrics.histogram(
            f"latency.{envelope.msg_type}", buckets=DEFAULT_LATENCY_BUCKETS
        ).observe(latency)
        self.metrics.histogram("hops.delivered", buckets=HOP_BUCKETS).observe(
            envelope.hops
        )
        if envelope.hops > 0:
            self.metrics.histogram(
                f"hops.{envelope.msg_type}", buckets=HOP_BUCKETS
            ).observe(envelope.hops)
        ctx = TraceRecorder.extract(envelope.headers)
        if ctx is not None:
            self.sim.trace.event(
                "net.deliver",
                node=dst_id,
                ctx=ctx,
                attrs={
                    "msg_type": envelope.msg_type,
                    "src": envelope.src,
                    "hops": envelope.hops,
                    "latency": latency,
                },
            )
        dst.receive(envelope)

    def _trace_drop(self, envelope: Envelope, reason: str, *, dst: str | None = None) -> None:
        """Attach a drop event to the envelope's trace, if it carries one."""
        ctx = TraceRecorder.extract(envelope.headers)
        if ctx is None:
            return
        self.sim.trace.event(
            "net.drop",
            node=envelope.src,
            ctx=ctx,
            attrs={
                "msg_type": envelope.msg_type,
                "dst": dst if dst is not None else (envelope.dst or ""),
                "reason": reason,
            },
        )
