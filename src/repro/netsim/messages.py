"""Message envelopes and the byte-size model.

The paper's bandwidth arguments (decentralized flooding is expensive,
semantic advertisements are "quite large, compared to for example URI
strings") only mean something if every message has a concrete size. The
:class:`SizeModel` assigns bytes to envelopes: a constant per-message
overhead standing in for the SOAP/WS-Addressing envelope the paper layers
under its generic discovery protocol, plus the payload's own serialized
size.

Payload objects may implement ``size_bytes() -> int``; anything else is
sized by a conservative structural estimate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

#: Default byte overhead per message: SOAP envelope + WS-Addressing headers.
DEFAULT_ENVELOPE_OVERHEAD = 512

#: Rough per-scalar serialization cost used by the structural fallback.
_SCALAR_COST = 16


def estimate_payload_size(payload: Any) -> int:
    """Estimate the serialized size of an arbitrary payload in bytes.

    Objects exposing ``size_bytes()`` are authoritative. Strings count
    their UTF-8 length plus XML-element overhead; containers recurse.
    """
    if payload is None:
        return 0
    size_fn = getattr(payload, "size_bytes", None)
    if callable(size_fn):
        return int(size_fn())
    if isinstance(payload, str):
        return len(payload.encode("utf-8")) + _SCALAR_COST
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, (int, float, bool)):
        return _SCALAR_COST
    if isinstance(payload, dict):
        return sum(
            estimate_payload_size(k) + estimate_payload_size(v) for k, v in payload.items()
        )
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(estimate_payload_size(item) for item in payload)
    # Dataclass-ish objects: size their public attributes.
    attrs = getattr(payload, "__dict__", None)
    if attrs:
        return sum(
            estimate_payload_size(v) for k, v in attrs.items() if not k.startswith("_")
        )
    return _SCALAR_COST


@dataclass(frozen=True)
class SizeModel:
    """Byte-size model for messages.

    Parameters
    ----------
    envelope_overhead:
        Constant per-message cost in bytes (transport + messaging headers).
    compression_ratio:
        Multiplier applied to payload bytes, modelling the binary-XML /
        compression "hook" the paper suggests for large semantic payloads.
        ``1.0`` means uncompressed.
    """

    envelope_overhead: int = DEFAULT_ENVELOPE_OVERHEAD
    compression_ratio: float = 1.0

    def message_size(self, payload: Any) -> int:
        """Total wire size of a message carrying ``payload``."""
        payload_bytes = estimate_payload_size(payload) * self.compression_ratio
        return int(self.envelope_overhead + payload_bytes)


_envelope_ids = itertools.count(1)


@dataclass
class Envelope:
    """A single message on the wire.

    Attributes
    ----------
    msg_type:
        Protocol operation name, e.g. ``"publish"``, ``"query"``,
        ``"beacon"``. The set of types is defined by the protocol layer
        (:mod:`repro.core.protocol`), not by the simulator.
    src / dst:
        Node ids. ``dst`` is ``None`` for multicast.
    payload:
        Arbitrary protocol payload; sized by the network's
        :class:`SizeModel` at send time.
    payload_type:
        The paper's "next header" field: names the description model the
        payload belongs to (e.g. ``"uri"``, ``"semantic"``) so nodes can
        dispatch — or silently discard messages they cannot understand.
    headers:
        Free-form protocol headers (query ids, TTLs, lease ids, ...).
    size_bytes:
        Filled in by the transport at send time.
    hops:
        Incremented each time the envelope is forwarded between nodes.
    """

    msg_type: str
    src: str
    dst: str | None
    payload: Any = None
    payload_type: str | None = None
    headers: dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 0
    hops: int = 0
    envelope_id: int = field(default_factory=lambda: next(_envelope_ids))
    sent_at: float = 0.0

    def forwarded(self, new_src: str, new_dst: str | None) -> "Envelope":
        """A copy of this envelope as re-sent by ``new_src``.

        Headers are shallow-copied so a forwarder may decrement a TTL
        without mutating the original.
        """
        return Envelope(
            msg_type=self.msg_type,
            src=new_src,
            dst=new_dst,
            payload=self.payload,
            payload_type=self.payload_type,
            headers=dict(self.headers),
            hops=self.hops + 1,
        )

    def copy_for(self, dst: str) -> "Envelope":
        """A per-receiver delivery copy of this envelope.

        Multicast delivers one copy per receiver so a handler mutating
        envelope metadata (headers, hops) cannot contaminate sibling
        deliveries. The payload object is shared — protocol payloads are
        frozen dataclasses — but headers are copied.
        """
        return Envelope(
            msg_type=self.msg_type,
            src=self.src,
            dst=dst,
            payload=self.payload,
            payload_type=self.payload_type,
            headers=dict(self.headers),
            size_bytes=self.size_bytes,
            hops=self.hops,
            sent_at=self.sent_at,
        )

    def header(self, name: str, default: Any = None) -> Any:
        """Convenience accessor for :attr:`headers`."""
        return self.headers.get(name, default)
