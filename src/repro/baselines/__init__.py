"""Baseline discovery technologies the paper compares against.

The paper's argument is comparative: current Web Service discovery
standards are "not sufficient for opportunistic service discovery … in
dynamic environments". To measure that, behavioural models of the three
technology families it surveys are provided:

* :mod:`~repro.baselines.uddi` — a centralized UDDI-like registry:
  manually configured endpoint, **no leasing** (stale advertisements
  accumulate; "neither UDDI nor ebXML use leasing … a serious
  shortcoming"), no dynamic registry discovery, no federation.
* :mod:`~repro.baselines.wsdiscovery` — WS-Discovery: fully decentralized
  LAN multicast probing (services answer for themselves), optionally with
  a *discovery proxy* — which reintroduces the no-leasing staleness
  problem ("when used with a discovery proxy the same shortcoming applies
  to WS-Discovery").
* :mod:`~repro.baselines.cluster` — a replicated registry cluster
  ("clusters are basically one registry replicated on several nodes …
  an example of this is UDDI"), built from our registry nodes in
  replicate-advertisements cooperation over a full mesh.

All baselines run on the same simulator, network, description models, and
workloads as the paper's architecture, so every comparison is
apples-to-apples.
"""

from repro.baselines.uddi import UddiClient, UddiRegistry, build_uddi_system
from repro.baselines.wsdiscovery import (
    WsDiscoveryClient,
    WsDiscoveryProxy,
    build_wsdiscovery_system,
)
from repro.baselines.cluster import build_cluster_system

__all__ = [
    "UddiClient",
    "UddiRegistry",
    "WsDiscoveryClient",
    "WsDiscoveryProxy",
    "build_cluster_system",
    "build_uddi_system",
    "build_wsdiscovery_system",
]
