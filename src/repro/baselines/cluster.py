"""Replicated registry cluster baseline.

"One could view a clustered registry as a hybrid topology as well. With
this scheme, one registry is replicated on several nodes. This means that
exactly the same content is present at different nodes. An example of a
system using this principle is UDDI, where either replication between
registry nodes or a hierarchical model may be used."

The cluster reuses our registry nodes with the *replicate-advertisements*
cooperation strategy over a full-mesh federation: every publish (and every
lease refresh) is pushed to every member, so each member can answer any
query locally (queries are issued with TTL 0). The cost shows up as
publish/renew replication traffic; the benefit as query-time locality and
robustness to member failures — the trade experiment E7 measures against
query-forwarding federation.
"""

from __future__ import annotations

from repro.core.config import COOPERATION_REPLICATE_ADS, DiscoveryConfig
from repro.core.registry_node import RegistryNode
from repro.core.system import DiscoverySystem
from repro.netsim.messages import SizeModel
from repro.semantics.ontology import Ontology


def cluster_config(**overrides) -> DiscoveryConfig:
    """Deployment configuration for a replicated cluster."""
    defaults = dict(
        cooperation=COOPERATION_REPLICATE_ADS,
        default_ttl=0,        # every member has all content
        gateway_election=False,  # replication wants all links used
    )
    defaults.update(overrides)
    return DiscoveryConfig(**defaults)


class ClusterSystem(DiscoverySystem):
    """A deployment whose registries form one replicated cluster."""

    def __init__(self, *, seed: int = 0, ontology: Ontology | None = None,
                 size_model: SizeModel | None = None, loss_rate: float = 0.0,
                 config: DiscoveryConfig | None = None) -> None:
        super().__init__(
            seed=seed,
            config=config or cluster_config(),
            ontology=ontology,
            size_model=size_model,
            loss_rate=loss_rate,
        )

    def finalize_cluster(self) -> None:
        """Mesh-federate all members. Call after adding every registry."""
        self.federate_mesh()

    def members(self) -> list[RegistryNode]:
        """The cluster members."""
        return list(self.registries)


def build_cluster_system(*, seed: int = 0, ontology: Ontology | None = None,
                         lans: tuple[str, ...] = ("lan-0", "lan-1"),
                         members_per_lan: int = 1,
                         loss_rate: float = 0.0) -> ClusterSystem:
    """Convenience: a cluster with one (or more) members per LAN, meshed."""
    system = ClusterSystem(seed=seed, ontology=ontology, loss_rate=loss_rate)
    for lan in lans:
        system.add_lan(lan)
        for _ in range(members_per_lan):
            system.add_registry(lan)
    system.finalize_cluster()
    return system
