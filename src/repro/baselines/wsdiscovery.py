"""WS-Discovery baseline: decentralized LAN multicast, optional proxy.

Ad hoc mode models "WS-Dynamic Discovery is based on local-scoped
multicast": there are no registries; clients multicast probes and every
service node evaluates and answers for itself. This is the paper's
*decentralized* topology — always-fresh answers, no single point of
failure, but per-query multicast cost and "response implosion" with broad
queries (experiments E1/E2).

Managed mode adds the *discovery proxy* ("a discovery proxy is also
specified to reduce the burden on the network"): a registry-like node
that answers probes; clients and services switch from multicast to
unicast when one is present. Crucially the proxy has **no leasing**
("when used with a discovery proxy the same shortcoming applies to
WS-Discovery"), so it accumulates stale advertisements under churn just
like UDDI (E4).
"""

from __future__ import annotations

from repro.core.client_node import ClientNode
from repro.core.config import DiscoveryConfig
from repro.core.registry_node import RegistryNode
from repro.core.service_node import ServiceNode
from repro.core.system import ALL_MODEL_IDS, DiscoverySystem, make_models
from repro.netsim.messages import SizeModel
from repro.semantics.ontology import Ontology
from repro.semantics.profiles import ServiceProfile


def wsdiscovery_config(*, managed: bool = False, **overrides) -> DiscoveryConfig:
    """Deployment configuration for WS-Discovery.

    Ad hoc mode never finds a registry, so every query takes the
    decentralized fallback path; managed mode finds the proxy through the
    standard probe/beacon machinery (WS-Discovery HELLO messages).
    """
    defaults = dict(
        leasing_enabled=False,
        signalling_interval=None,
        gateway_election=False,
        fallback_enabled=True,
        default_ttl=0,
        beacon_interval=5.0 if managed else None,
    )
    defaults.update(overrides)
    return DiscoveryConfig(**defaults)


class WsDiscoveryClient(ClientNode):
    """An ad hoc/managed WS-Discovery client."""

    role = "wsd-client"


class WsDiscoveryProxy(RegistryNode):
    """The WS-Discovery proxy: a single LAN registry without leasing.

    It reuses the registry node's probe/beacon handling (modelling HELLO
    announcements) but never federates — the paper's point about the
    "non-existing coherence between WS-Dynamic Discovery and e.g. UDDI"
    is precisely that the proxy has no WAN story.
    """

    role = "wsd-proxy"


class WsDiscoverySystem(DiscoverySystem):
    """A WS-Discovery deployment (ad hoc unless a proxy is added)."""

    def __init__(self, *, seed: int = 0, ontology: Ontology | None = None,
                 managed: bool = False, size_model: SizeModel | None = None,
                 loss_rate: float = 0.0, config: DiscoveryConfig | None = None) -> None:
        super().__init__(
            seed=seed,
            config=config or wsdiscovery_config(managed=managed),
            ontology=ontology,
            size_model=size_model,
            loss_rate=loss_rate,
        )

    def add_proxy(self, lan: str, *, node_id: str | None = None,
                  model_ids: tuple[str, ...] = ALL_MODEL_IDS) -> WsDiscoveryProxy:
        """Place a discovery proxy on ``lan`` (switches it to managed mode)."""
        node_id = node_id or f"wsd-proxy-{next(self._counters['registry']):02d}"
        proxy = WsDiscoveryProxy(node_id, self.config, make_models(self.ontology, model_ids))
        self.network.add_node(proxy, lan)
        self.registries.append(proxy)
        self._schedule_start(proxy)
        return proxy

    def add_client(self, lan, *, node_id=None, model_ids=ALL_MODEL_IDS, with_ontology=True):
        node_id = node_id or f"client-{next(self._counters['client']):03d}"
        client = WsDiscoveryClient(
            node_id,
            self.config,
            make_models(self.ontology, model_ids, with_ontology=with_ontology),
        )
        self.network.add_node(client, lan)
        self.clients.append(client)
        self._schedule_start(client)
        return client

    def add_service(self, lan, profile: ServiceProfile, *, node_id=None,
                    model_ids=ALL_MODEL_IDS) -> ServiceNode:
        """Service nodes in ad hoc mode just answer multicast probes;
        in managed mode they additionally publish to the proxy they find."""
        return super().add_service(lan, profile, node_id=node_id, model_ids=model_ids)


def build_wsdiscovery_system(*, seed: int = 0, ontology: Ontology | None = None,
                             lans: tuple[str, ...] = ("lan-0",), managed: bool = False,
                             loss_rate: float = 0.0) -> WsDiscoverySystem:
    """Convenience: a WS-Discovery deployment with LANs placed.

    With ``managed=True`` one proxy is placed on the first LAN.
    """
    system = WsDiscoverySystem(seed=seed, ontology=ontology, managed=managed,
                               loss_rate=loss_rate)
    for lan in lans:
        system.add_lan(lan)
    if managed:
        system.add_proxy(lans[0])
    return system
