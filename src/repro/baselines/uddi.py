"""UDDI baseline: a centralized registry without aliveness information.

What makes it UDDI-like, per the paper's critique:

* **Manual configuration** — there is no registry discovery; clients and
  services are seeded with the registry endpoint ("registries may be
  discovered … by manually configuring the registry endpoint").
* **No leasing** — "Neither UDDI nor ebXML use leasing, and are dependent
  on services actively de-registering themselves. This is of course not
  possible in the event of a service provider crash, and is a serious
  shortcoming." Advertisements of crashed services linger forever
  (experiment E4).
* **Single point of failure** — one registry; when it is down, discovery
  is down (experiment E3).

The registry still supports all description models through the generic
stack: the paper's criticism is about *distribution*, not description, and
keeping the stack identical isolates exactly that variable.
"""

from __future__ import annotations

from repro.core.client_node import ClientNode
from repro.core.config import DiscoveryConfig
from repro.core.registry_node import RegistryNode
from repro.core.service_node import ServiceNode
from repro.core.system import ALL_MODEL_IDS, DiscoverySystem, make_models
from repro.netsim.messages import Envelope, SizeModel
from repro.semantics.ontology import Ontology
from repro.semantics.profiles import ServiceProfile


def uddi_config(**overrides) -> DiscoveryConfig:
    """The deployment configuration modelling UDDI's behaviour."""
    defaults = dict(
        leasing_enabled=False,
        beacon_interval=None,
        signalling_interval=None,
        gateway_election=False,
        fallback_enabled=False,
        default_ttl=0,
    )
    defaults.update(overrides)
    return DiscoveryConfig(**defaults)


class UddiRegistry(RegistryNode):
    """A registry that does not participate in dynamic discovery."""

    role = "uddi-registry"

    def handle_registry_probe(self, envelope: Envelope) -> None:
        """UDDI has no multicast discovery: probes go unanswered."""

    def start(self) -> None:
        """No beacons, no federation probing — just passive serving."""
        self.rim.lan_name = self.lan_name or ""
        from repro.core.forwarding import SeenQueries
        from repro.registry.leases import LeaseManager

        self.leases = LeaseManager(
            lambda: self.sim.now, default_duration=self.config.lease_duration
        )
        self._seen = SeenQueries(lambda: self.sim.now)


class UddiClient(ClientNode):
    """A client with a manually configured registry endpoint."""

    role = "uddi-client"

    def __init__(self, node_id: str, config: DiscoveryConfig, models, registry_id: str) -> None:
        super().__init__(node_id, config, models)
        self._registry_id = registry_id

    def start(self) -> None:
        self.tracker.seed(self._registry_id)


class UddiServiceNode(ServiceNode):
    """A service with a manually configured registry endpoint.

    Without leasing it sends no renewals; the only cleanup path is
    :meth:`~repro.core.service_node.ServiceNode.deregister` — which a
    crash never runs.
    """

    role = "uddi-service"

    def __init__(self, node_id, config, profile, models, registry_id: str) -> None:
        super().__init__(node_id, config, profile, models)
        self._registry_id = registry_id

    def start(self) -> None:
        self.tracker.seed(self._registry_id)


class UddiSystem(DiscoverySystem):
    """A deployment built around one central UDDI-like registry."""

    def __init__(self, *, seed: int = 0, ontology: Ontology | None = None,
                 size_model: SizeModel | None = None, loss_rate: float = 0.0,
                 config: DiscoveryConfig | None = None) -> None:
        super().__init__(
            seed=seed,
            config=config or uddi_config(),
            ontology=ontology,
            size_model=size_model,
            loss_rate=loss_rate,
        )
        self.registry: UddiRegistry | None = None

    def add_registry(self, lan, *, node_id=None, model_ids=ALL_MODEL_IDS,
                     seeds=(), with_ontology=True, capacity=None):
        """Place *the* central registry; only one is allowed.

        ``seeds`` is accepted for signature compatibility but ignored:
        UDDI registries do not federate.
        """
        if self.registry is not None:
            raise ValueError("a UDDI deployment has exactly one registry")
        node_id = node_id or "uddi-registry"
        registry = UddiRegistry(
            node_id, self.config,
            make_models(self.ontology, model_ids, with_ontology=with_ontology),
            capacity=capacity,
        )
        self.network.add_node(registry, lan)
        self.registries.append(registry)
        if self.ontology is not None and with_ontology:
            registry.store_artifact(self.ontology.name, self.ontology)
        self._schedule_start(registry)
        self.registry = registry
        return registry

    def add_client(self, lan, *, node_id=None, model_ids=ALL_MODEL_IDS, with_ontology=True):
        if self.registry is None:
            raise ValueError("add the registry before clients")
        node_id = node_id or f"client-{next(self._counters['client']):03d}"
        client = UddiClient(
            node_id,
            self.config,
            make_models(self.ontology, model_ids, with_ontology=with_ontology),
            self.registry.node_id,
        )
        self.network.add_node(client, lan)
        self.clients.append(client)
        self._schedule_start(client)
        return client

    def add_service(self, lan, profile: ServiceProfile, *, node_id=None,
                    model_ids=ALL_MODEL_IDS):
        if self.registry is None:
            raise ValueError("add the registry before services")
        node_id = node_id or f"svc-node-{next(self._counters['svc']):03d}"
        service = UddiServiceNode(
            node_id,
            self.config,
            profile,
            make_models(self.ontology, model_ids),
            self.registry.node_id,
        )
        self.network.add_node(service, lan)
        self.services.append(service)
        self._schedule_start(service)
        return service


def build_uddi_system(*, seed: int = 0, ontology: Ontology | None = None,
                      registry_lan: str = "lan-0", lans: tuple[str, ...] = ("lan-0",),
                      loss_rate: float = 0.0) -> UddiSystem:
    """Convenience: a UDDI deployment with its LANs and registry placed."""
    system = UddiSystem(seed=seed, ontology=ontology, loss_rate=loss_rate)
    for lan in lans:
        system.add_lan(lan)
    system.add_registry(registry_lan)
    return system
