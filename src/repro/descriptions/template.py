"""Keyword/template descriptions: the UDDI / WSDL registry model.

"Querying for a service is most often accomplished by filling out a
partial template for the service wanted, and submitting this to the
registry, which finds service advertisements matching this template."

Descriptions carry the service name, a category string, and a bag of
keywords tokenized from the capability's names and free text. A query
matches when *all* its tokens appear in the description's token bag —
UDDI-style categorized keyword search: reasonable recall when vocabulary
overlaps lexically, no notion of subsumption, no QoS filtering.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.descriptions.base import DescriptionModel, ModelMatch
from repro.semantics.profiles import ServiceProfile, ServiceRequest

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|[^A-Za-z0-9]+")


def tokenize(text: str) -> frozenset[str]:
    """Lower-case word tokens, splitting camel-case and punctuation.

    ``"ncw:GroundTrackService"`` -> ``{"ncw", "ground", "track", "service"}``.
    """
    parts = _CAMEL_BOUNDARY.split(text)
    return frozenset(part.lower() for part in parts if part)


@dataclass(frozen=True)
class TemplateDescription:
    """A UDDI-like businessService record: name, category, keyword bag."""

    service_name: str
    category: str
    keywords: frozenset[str]
    endpoint: str

    def size_bytes(self) -> int:
        """Name + category + tModel keyword entries, with XML overhead."""
        keyword_bytes = sum(len(k.encode("utf-8")) + 24 for k in sorted(self.keywords))
        return (
            256  # businessService skeleton
            + len(self.service_name.encode("utf-8"))
            + len(self.category.encode("utf-8"))
            + len(self.endpoint.encode("utf-8"))
            + keyword_bytes
        )


@dataclass(frozen=True)
class TemplateQuery:
    """A partial template: tokens that must all be present."""

    tokens: frozenset[str]
    max_results: int | None = None

    def size_bytes(self) -> int:
        return 128 + sum(len(t.encode("utf-8")) + 16 for t in sorted(self.tokens))


class TemplateModel(DescriptionModel):
    """All-tokens-present keyword matching over template records."""

    model_id = "template"

    def describe(self, profile: ServiceProfile, endpoint: str) -> TemplateDescription:
        keywords = (
            tokenize(profile.service_name)
            | tokenize(profile.category)
            | tokenize(profile.text)
            | frozenset(t for concept in profile.outputs for t in tokenize(concept))
        )
        return TemplateDescription(
            service_name=profile.service_name,
            category=profile.category,
            keywords=keywords,
            endpoint=endpoint,
        )

    def query_from(self, request: ServiceRequest) -> TemplateQuery:
        tokens: set[str] = set(t.lower() for t in request.keywords)
        if request.category:
            tokens |= tokenize(request.category)
        for concept in request.desired_outputs:
            tokens |= tokenize(concept)
        # Namespace prefixes ("ncw", "ems", "gen") appear in every concept
        # and carry no selectivity; a human filling a UDDI template would
        # not type them.
        tokens -= {"ncw", "ems", "gen", "owl", "thing"}
        return TemplateQuery(tokens=frozenset(tokens), max_results=request.max_results)

    def evaluate(self, description: TemplateDescription, query: TemplateQuery) -> ModelMatch:
        if not query.tokens:
            return ModelMatch.no_match()
        if query.tokens <= description.keywords:
            # Fewer extra keywords = a tighter record; prefer those.
            extra = len(description.keywords - query.tokens)
            score = 1.0 / (1.0 + extra)
            return ModelMatch(matched=True, degree=1, score=score)
        return ModelMatch.no_match()
