"""Pluggable service-description models.

The paper's central layering claim: "The infrastructure should support
different kinds of service description mechanisms, ranging from simple
(name, id, URI specifying a pre-agreed service type), to rich (e.g.
semantic descriptions)" — carried over one generic distribution stack via
a "next header"-style ``payload_type`` field.

Each :class:`~repro.descriptions.base.DescriptionModel` plug-in defines:

* how a service capability (a :class:`~repro.semantics.ServiceProfile`)
  is *described* in that model,
* how a need (a :class:`~repro.semantics.ServiceRequest`) becomes a
  *query* in that model, and
* how a registry *evaluates* a query against stored descriptions.

Three models ship, mirroring the technology landscape the paper surveys:

* :class:`~repro.descriptions.uri.UriModel` — WS-Discovery-style opaque
  type URIs; exact string match; tiny advertisements.
* :class:`~repro.descriptions.template.TemplateModel` — UDDI/WSDL-style
  names + keyword templates; token containment match.
* :class:`~repro.descriptions.semantic.SemanticModel` — OWL-S-style
  profiles evaluated by the degree-of-match matchmaker; requires the
  shared ontology (which the registry network can ship, §4.6).
"""

from repro.descriptions.base import DescriptionModel, ModelMatch, ModelRegistry
from repro.descriptions.uri import UriDescription, UriModel, UriQuery
from repro.descriptions.template import TemplateDescription, TemplateModel, TemplateQuery
from repro.descriptions.semantic import SemanticModel

__all__ = [
    "DescriptionModel",
    "ModelMatch",
    "ModelRegistry",
    "SemanticModel",
    "TemplateDescription",
    "TemplateModel",
    "TemplateQuery",
    "UriDescription",
    "UriModel",
    "UriQuery",
]
