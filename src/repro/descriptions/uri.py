"""URI-based descriptions: the WS-Discovery / simple-Web-Services model.

"The simpler ways to describe a service is using a string for its name, or
an URI for its type … In WS-Dynamic Discovery, services are also described
using Unified Resource Identifiers." Matching is exact string equality on
the type URI — no semantics, so a request phrased at a broader level than
the advertisement (e.g. asking for ``Sensor`` when ``Radar`` was
advertised) silently fails. Experiment E5 quantifies that gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.descriptions.base import DescriptionModel, ModelMatch
from repro.semantics.profiles import ServiceProfile, ServiceRequest


@dataclass(frozen=True)
class UriDescription:
    """An advertisement consisting of a type URI and an endpoint."""

    type_uri: str
    endpoint: str
    service_name: str = ""

    def size_bytes(self) -> int:
        """URIs on the wire: just the strings."""
        return len(self.type_uri.encode("utf-8")) + len(self.endpoint.encode("utf-8")) + \
            len(self.service_name.encode("utf-8"))


@dataclass(frozen=True)
class UriQuery:
    """A query for services of exactly one pre-agreed type URI."""

    type_uri: str
    max_results: int | None = None

    def size_bytes(self) -> int:
        return len(self.type_uri.encode("utf-8")) + 8


class UriModel(DescriptionModel):
    """Exact-match URI discovery.

    The type URI of a capability is its category concept — the convention
    "one would let a URI correspond to a given WSDL schema registered with
    a UDDI registry".
    """

    model_id = "uri"

    def describe(self, profile: ServiceProfile, endpoint: str) -> UriDescription:
        return UriDescription(
            type_uri=profile.category,
            endpoint=endpoint,
            service_name=profile.service_name,
        )

    def query_from(self, request: ServiceRequest) -> UriQuery:
        # A URI query can only express the category; richer constraints
        # (outputs, QoS) are silently dropped — that is the model's point.
        type_uri = request.category or (
            request.desired_outputs[0] if request.desired_outputs else ""
        )
        return UriQuery(type_uri=type_uri, max_results=request.max_results)

    def evaluate(self, description: UriDescription, query: UriQuery) -> ModelMatch:
        if description.type_uri == query.type_uri:
            return ModelMatch(matched=True, degree=1, score=1.0)
        return ModelMatch.no_match()
