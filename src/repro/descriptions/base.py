"""Description-model plug-in interface and dispatch registry.

A registry node holds one :class:`ModelRegistry`; incoming payloads are
dispatched on their ``payload_type`` ("next header"). Nodes receiving a
payload whose model they do not support "quickly filter and silently
discard" it — the registry counts those so E10 can report them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

from repro.errors import UnsupportedModelError
from repro.semantics.profiles import ServiceProfile, ServiceRequest


@dataclass(frozen=True)
class ModelMatch:
    """A model-agnostic match verdict.

    ``degree`` orders match strength within a model (semantic models map
    their degree-of-match here; boolean models use 1/0). ``score`` in
    [0, 1] breaks ties. Registries rank hits by ``(degree, score)``.
    """

    matched: bool
    degree: int = 0
    score: float = 0.0

    @staticmethod
    def no_match() -> "ModelMatch":
        return ModelMatch(matched=False, degree=0, score=0.0)


class DescriptionModel(abc.ABC):
    """One way of describing and querying for services.

    Subclasses define the payload types that flow inside envelopes with
    ``payload_type == model_id``. Descriptions and queries must expose
    ``size_bytes()`` so the transport can account for their wire cost.
    """

    #: Unique "next header" value for this model.
    model_id: str = ""

    @abc.abstractmethod
    def describe(self, profile: ServiceProfile, endpoint: str) -> Any:
        """Render a capability as this model's advertisement payload."""

    @abc.abstractmethod
    def query_from(self, request: ServiceRequest) -> Any:
        """Render a need as this model's query payload."""

    @abc.abstractmethod
    def evaluate(self, description: Any, query: Any) -> ModelMatch:
        """Match one stored description against one query payload."""

    def prefilter(self, description: Any, query: Any) -> bool:
        """Cheap reject before :meth:`evaluate` is paid for.

        Must only return ``False`` when :meth:`evaluate` is guaranteed to
        report no match (e.g. a hard QoS constraint the description cannot
        satisfy), so skipping the rejected description never changes the
        query's hit list. The default accepts everything.
        """
        return True

    def can_evaluate(self) -> bool:
        """Whether this node currently has what it needs to evaluate
        queries (e.g. the shared ontology for semantic models)."""
        return True

    def make_index(self) -> Any | None:
        """A fresh :class:`~repro.registry.index.ConceptIndexer` for this
        model's advertisements, or ``None`` when the model's queries can
        only be answered by a linear scan (the default)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self.model_id!r}>"


class ModelRegistry:
    """The set of description models one node supports, keyed by model id."""

    def __init__(self, models: list[DescriptionModel] | None = None) -> None:
        self._models: dict[str, DescriptionModel] = {}
        self.discarded_payloads = 0
        for model in models or []:
            self.register(model)

    def register(self, model: DescriptionModel) -> DescriptionModel:
        """Add a model. Re-registering the same id replaces the plug-in —
        the paper's "software libraries for distribution would only need
        new plug-ins … keeping the same stack underneath"."""
        if not model.model_id:
            raise UnsupportedModelError("description model has empty model_id")
        self._models[model.model_id] = model
        return model

    def supports(self, model_id: str | None) -> bool:
        """Whether payloads of ``model_id`` can be handled here."""
        return model_id in self._models

    def get(self, model_id: str | None) -> DescriptionModel:
        """The model for ``model_id``; raises if unsupported."""
        if model_id is None or model_id not in self._models:
            raise UnsupportedModelError(f"unsupported description model {model_id!r}")
        return self._models[model_id]

    def get_or_discard(self, model_id: str | None) -> DescriptionModel | None:
        """The model, or ``None`` (counted) when the payload must be discarded."""
        model = self._models.get(model_id or "")
        if model is None:
            self.discarded_payloads += 1
        return model

    def model_ids(self) -> list[str]:
        """Supported model ids, sorted."""
        return sorted(self._models)
