"""Semantic descriptions: OWL-S-style profiles with degree-of-match.

The advertisement payload *is* the :class:`~repro.semantics.ServiceProfile`
and the query payload *is* the :class:`~repro.semantics.ServiceRequest`;
evaluation delegates to the :class:`~repro.semantics.Matchmaker`.

A node can only evaluate semantic queries if it holds the shared ontology
("additional ontologies may be needed by clients for them to be able to
evaluate and use services" — §2). A :class:`SemanticModel` constructed
without an ontology reports ``can_evaluate() == False`` and fails all
matches until :meth:`attach_ontology` is called — typically after fetching
the ontology from the registry network's repository (§4.6, experiment E12).
"""

from __future__ import annotations

from repro.descriptions.base import DescriptionModel, ModelMatch
from repro.semantics.matchmaker import Matchmaker
from repro.semantics.ontology import Ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest
from repro.semantics.reasoner import Reasoner


class SemanticModel(DescriptionModel):
    """Degree-of-match evaluation over OWL-S-like profiles."""

    model_id = "semantic"

    def __init__(self, ontology: Ontology | None = None) -> None:
        self._matchmaker: Matchmaker | None = None
        self.missing_ontology_failures = 0
        if ontology is not None:
            self.attach_ontology(ontology)

    def attach_ontology(self, ontology: Ontology) -> None:
        """Install (or replace) the shared ontology used for evaluation."""
        self._matchmaker = Matchmaker(Reasoner(ontology))

    @property
    def ontology(self) -> Ontology | None:
        """The attached ontology, if any."""
        return self._matchmaker.reasoner.ontology if self._matchmaker else None

    @property
    def matchmaker(self) -> Matchmaker | None:
        """The live matchmaker (replaced whenever the ontology is)."""
        return self._matchmaker

    @property
    def reasoner(self) -> Reasoner | None:
        """The live subsumption reasoner, if an ontology is attached."""
        return self._matchmaker.reasoner if self._matchmaker else None

    def can_evaluate(self) -> bool:
        return self._matchmaker is not None

    def make_index(self):
        """An inverted concept index over this model's advertisements.

        The index reads the ontology/reasoner through this model at every
        lookup, so attaching or swapping the ontology later (repository
        fetch, E12) is picked up without re-wiring.
        """
        from repro.registry.index import SemanticConceptIndex

        return SemanticConceptIndex(self)

    def describe(self, profile: ServiceProfile, endpoint: str) -> ServiceProfile:
        # The profile is already a full semantic description; the endpoint
        # travels in the advertisement record, not the payload.
        return profile

    def query_from(self, request: ServiceRequest) -> ServiceRequest:
        return request

    def prefilter(self, description: ServiceProfile, query: ServiceRequest) -> bool:
        """QoS pre-filter: reject constraint-failing profiles unscored.

        A profile violating any hard QoS constraint evaluates to FAIL
        (``Matchmaker.match`` checks constraints before anything else), so
        rejecting it here skips the semantic scoring without changing the
        hit list. Non-profile payloads pass through untouched.
        """
        if not isinstance(query, ServiceRequest) or not query.qos_constraints:
            return True
        if not isinstance(description, ServiceProfile):
            return True
        for constraint in query.qos_constraints:
            if not constraint.satisfied_by(description.qos_value(constraint.attribute)):
                return False
        return True

    def evaluate(self, description: ServiceProfile, query: ServiceRequest) -> ModelMatch:
        if self._matchmaker is None:
            self.missing_ontology_failures += 1
            return ModelMatch.no_match()
        result = self._matchmaker.match(description, query)
        if not result.matched:
            return ModelMatch.no_match()
        return ModelMatch(matched=True, degree=int(result.degree), score=result.score)
