"""The extension features working together in one dynamic operation.

A long-running crisis deployment where:

1. a client *watches* for medical services — new arrivals are pushed to
   it (no polling);
2. the LAN's registry is destroyed — a *standby registry* promotes itself
   within a few beacon intervals and discovery continues in registry mode;
3. a need no service satisfies directly is *mediated* through a
   translation service (two-step plan).

Run:  python examples/dynamic_operations.py
"""

from repro import DiscoverySystem, MediationPlanner, ServiceProfile, ServiceRequest
from repro.core.config import DiscoveryConfig
from repro.semantics import emergency_ontology


def main() -> None:
    config = DiscoveryConfig(
        beacon_interval=1.0, lease_duration=6.0, purge_interval=1.0,
        query_timeout=2.0, aggregation_timeout=0.3,
    )
    system = DiscoverySystem(seed=21, ontology=emergency_ontology(),
                             config=config)
    system.add_lan("staging-area")
    primary = system.add_registry("staging-area")
    standby = system.add_standby_registry("staging-area", lan_target=1)
    client = system.add_client("staging-area")
    system.run(until=3.0)

    print("== 1. standing query: watch for medical services ==")
    watch = client.watch(ServiceRequest.build("ems:MedicalService"))
    system.run_for(1.0)
    print(f"  watch registered (acked={watch.acked}); nothing deployed yet")

    system.add_service("staging-area", ServiceProfile.build(
        "field-hospital", "ems:HospitalCapacityService",
        outputs=["ems:HospitalBed"]))
    system.run_for(2.0)
    print(f"  pushed on arrival: {watch.service_names()}")

    print("== 2. registry destroyed; standby takes over ==")
    primary.crash()
    system.run_for(8.0)
    print(f"  standby active: {standby.active} "
          f"(promotions={standby.promotions})")
    call = system.discover(client, ServiceRequest.build("ems:MedicalService"),
                           timeout=30.0)
    print(f"  discovery via {call.via}: {call.service_names()}")

    print("== 3. mediated discovery through a translator ==")
    system.add_service("staging-area", ServiceProfile.build(
        "damage-assessor", "ems:AlertingService",
        outputs=["ems:DamageReport"]))
    system.add_service("staging-area", ServiceProfile.build(
        "report-translator", "ems:TranslationService",
        inputs=["ems:DamageReport"], outputs=["ems:CasualtyReport"]))
    system.run_for(2.0)
    planner = MediationPlanner(system,
                               translator_category="ems:TranslationService")
    need = ServiceRequest.build(None, outputs=["ems:CasualtyReport"],
                                inputs=["ems:IncidentLocation"])
    outcome = planner.discover(client, need)
    print(f"  direct hits: {[h.advertisement.service_name for h in outcome.direct_hits]}")
    print(f"  plan: {outcome.plans[0].describe()} "
          f"(extra queries: {outcome.extra_queries})")
    assert outcome.satisfied


if __name__ == "__main__":
    main()
