"""A tour of the semantic layer: ontologies, degrees of match, models.

No network here — this example exercises the matchmaking substrate
directly, showing why the paper insists on semantic descriptions: the
same capability described three ways answers the same need very
differently.

Run:  python examples/matchmaking_tour.py
"""

from repro.descriptions.semantic import SemanticModel
from repro.descriptions.template import TemplateModel
from repro.descriptions.uri import UriModel
from repro.semantics import Matchmaker, Ontology, Reasoner
from repro.semantics.profiles import ServiceProfile, ServiceRequest


def main() -> None:
    # 1. Build a small ontology by hand.
    ont = Ontology("demo")
    ont.add_subtree("SensorService", {
        "RadarService": {"AirRadarService": {}, "GroundRadarService": {}},
        "CameraService": {},
    })
    ont.add_subtree("Data", {
        "Track": {"AirTrack": {}, "GroundTrack": {}},
        "Image": {},
    })
    reasoner = Reasoner(ont)
    print("== subsumption ==")
    print("  Sensor subsumes AirRadar:",
          reasoner.subsumes("SensorService", "AirRadarService"))
    print("  distance(AirTrack, GroundTrack):",
          reasoner.distance("AirTrack", "GroundTrack"))
    print("  similarity(AirTrack, GroundTrack):",
          round(reasoner.similarity("AirTrack", "GroundTrack"), 3))

    # 2. Degrees of match, exactly as Paolucci et al. define them.
    matchmaker = Matchmaker(reasoner)
    advertised = ServiceProfile.build(
        "air-radar-1", "AirRadarService", outputs=["AirTrack"],
        qos={"coverage_km": 60.0},
        text="Long range air surveillance radar",
    )
    print("== degrees of match for one advertisement ==")
    for label, request in [
        ("exact        ", ServiceRequest.build("AirRadarService",
                                               outputs=["AirTrack"])),
        ("plug-in      ", ServiceRequest.build("AirRadarService",
                                               outputs=["AirTrack"],
                                               inputs=[])),
        ("generalized  ", ServiceRequest.build("SensorService",
                                               outputs=["Track"])),
        ("unrelated    ", ServiceRequest.build("CameraService",
                                               outputs=["Image"])),
        ("qos-filtered ", ServiceRequest.build("AirRadarService",
                                               qos={"coverage_km": (100.0, None)})),
    ]:
        result = matchmaker.match(advertised, request)
        print(f"  {label} -> {result.degree.name:<8} score={result.score:.2f}"
              + (f" failed={result.failed_constraints}"
                 if result.failed_constraints else ""))

    # 3. The same capability in the three description models.
    print("== one capability, three description models ==")
    need = ServiceRequest.build("SensorService", outputs=["Track"])
    for model in (UriModel(), TemplateModel(), SemanticModel(ont)):
        description = model.describe(advertised, "svc://air-radar-1")
        verdict = model.evaluate(description, model.query_from(need))
        from repro.netsim.messages import estimate_payload_size

        print(f"  {model.model_id:<9} matched={str(verdict.matched):<5} "
              f"advertisement={estimate_payload_size(description):>5} bytes")
    print("  (the generalized need only matches under the semantic model,")
    print("   and the semantic advertisement is the largest on the wire —")
    print("   the expressivity/bandwidth trade the paper discusses.)")


if __name__ == "__main__":
    main()
