"""Run the same workload on all four architectures and compare.

This is the paper's argument in one table: under churn, the technologies
without aliveness information (UDDI, proxy-mode WS-Discovery) serve stale
services; ad hoc WS-Discovery stays fresh but cannot leave its LAN; the
paper's federated architecture is both fresh and WAN-wide.

Run:  python examples/baseline_comparison.py
"""

from repro.baselines.uddi import UddiSystem, uddi_config
from repro.baselines.wsdiscovery import WsDiscoverySystem, wsdiscovery_config
from repro.core.config import DiscoveryConfig
from repro.metrics.retrieval import score_queries
from repro.metrics.staleness import registry_staleness
from repro.workloads.churn import ServiceChurn
from repro.workloads.queries import QueryDriver, QueryWorkload
from repro.workloads.scenarios import build_scenario, crisis_scenario


def build(arch: str, seed: int = 11):
    spec = crisis_scenario(agencies=2, services_per_lan=4, seed=seed)
    ontology = spec.ontology_factory()
    if arch == "federated":
        return build_scenario(spec, config=DiscoveryConfig(
            lease_duration=10.0, purge_interval=2.0))
    if arch == "uddi":
        system = UddiSystem(seed=seed, ontology=ontology, config=uddi_config())
        system.add_lan(spec.lan_names[0])
        system.add_lan(spec.lan_names[1])
        system.add_registry(spec.lan_names[0])
        return build_scenario(spec, system=system, with_registries=False)
    if arch == "wsd-adhoc":
        system = WsDiscoverySystem(seed=seed, ontology=ontology)
        return build_scenario(spec, system=system, with_registries=False)
    if arch == "wsd-proxy":
        system = WsDiscoverySystem(seed=seed, ontology=ontology,
                                   config=wsdiscovery_config(managed=True))
        system.add_lan(spec.lan_names[0])
        system.add_lan(spec.lan_names[1])
        system.add_proxy(spec.lan_names[0])
        return build_scenario(spec, system=system, with_registries=False)
    raise ValueError(arch)


def main() -> None:
    rows = []
    for arch in ("federated", "uddi", "wsd-proxy", "wsd-adhoc"):
        built = build(arch)
        system = built.system
        system.run(until=3.0)

        churn = ServiceChurn(system, rate=0.05, permanent=True).start()
        system.run_for(60.0)
        churn.stop()
        system.run_for(20.0)

        workload = QueryWorkload.anchored(built.generator, built.profiles,
                                          8, generalize=1)
        driver = QueryDriver(system, workload, interval=0.5, seed=3)
        issued = driver.play(settle=1.0, drain=15.0)

        alive = frozenset(s.profile.service_name for s in system.services
                          if s.alive)
        dead = frozenset(p.service_name for p in built.profiles) - alive
        scores = score_queries(issued, alive_only=alive)
        stale_hits = sum(
            1 for q in issued if q.call.completed
            for name in q.call.service_names() if name in dead
        )
        rows.append({
            "arch": arch,
            "dead": len(dead),
            "recall(alive)": round(scores.recall, 3),
            "stale_hits": stale_hits,
            "registry_staleness": round(registry_staleness(system), 3),
            "bytes": system.traffic()["bytes_sent"],
        })

    columns = list(rows[0])
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows)) for c in columns}
    print("  ".join(c.ljust(widths[c]) for c in columns))
    print("  ".join("-" * widths[c] for c in columns))
    for row in rows:
        print("  ".join(str(row[c]).ljust(widths[c]) for c in columns))
    print()
    print("federated: fresh AND cross-LAN; uddi/wsd-proxy: stale under churn;")
    print("wsd-adhoc: fresh but LAN-local (lower recall on remote services).")


if __name__ == "__main__":
    main()
