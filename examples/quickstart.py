"""Quickstart: one LAN, one registry, one service, one query.

Run:  python examples/quickstart.py
"""

from repro import DiscoverySystem, ServiceProfile, ServiceRequest
from repro.semantics import emergency_ontology


def main() -> None:
    # A deployment is a simulated network plus the discovery architecture.
    system = DiscoverySystem(seed=1, ontology=emergency_ontology())
    system.add_lan("field-hq")
    system.add_registry("field-hq")

    # A provider advertises an OWL-S-style capability profile.
    system.add_service(
        "field-hq",
        ServiceProfile.build(
            "medevac-dispatch",
            "ems:AmbulanceDispatchService",
            outputs=["ems:UnitLocation"],
            qos={"latency_ms": 120.0},
        ),
    )

    client = system.add_client("field-hq")
    system.run(until=2.0)  # bootstrap: probe, attach, publish, lease

    # The client asks for any *medical* service producing *locations* —
    # broader terms than the advertisement used; the registry's
    # degree-of-match reasoning bridges the gap.
    call = system.discover(
        client,
        ServiceRequest.build("ems:MedicalService", outputs=["ems:Location"]),
    )

    print(f"query completed via: {call.via}")
    print(f"services found     : {call.service_names()}")
    print(f"invoke at          : {call.endpoints()}")
    print(f"latency            : {call.latency * 1000:.1f} ms simulated")
    assert call.service_names() == ["medevac-dispatch"]


if __name__ == "__main__":
    main()
