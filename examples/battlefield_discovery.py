"""Network-centric battlefield discovery (the MILCOM companion scenario).

Tactical units form a chain of LANs ("a hybrid topology probably maps best
to a military organization"). The script demonstrates:

1. opportunistic discovery: a company client finds an air-surveillance
   radar two units up the chain, using subsumption ("a Radar is a kind of
   Sensor") and QoS constraints;
2. a WAN partition between branches — units keep discovering their own
   services ("a network disconnect between branches will not prevent
   services running on the same organizational level from discovering
   each other");
3. partition healing.

Run:  python examples/battlefield_discovery.py
"""

from repro import DiscoverySystem, ServiceProfile, ServiceRequest
from repro.core.config import DiscoveryConfig
from repro.semantics import battlefield_ontology


def main() -> None:
    config = DiscoveryConfig(query_timeout=3.0, aggregation_timeout=0.3,
                             ping_interval=2.0, signalling_interval=4.0)
    system = DiscoverySystem(seed=42, ontology=battlefield_ontology(),
                             config=config)

    units = ["battalion-hq", "company-a", "company-b"]
    registries = {}
    for unit in units:
        system.add_lan(unit)
        registries[unit] = system.add_registry(unit)
    system.federate_chain()  # hq - company-a - company-b

    # Services along the chain.
    system.add_service("battalion-hq", ServiceProfile.build(
        "asr-1", "ncw:AirSurveillanceRadarService",
        outputs=["ncw:AirTrack"],
        qos={"coverage_km": 80.0, "update_rate_hz": 1.0},
    ))
    system.add_service("company-a", ServiceProfile.build(
        "uav-cam", "ncw:IRCameraService",
        outputs=["ncw:GroundTrack"],
        qos={"coverage_km": 10.0, "update_rate_hz": 5.0},
    ))
    system.add_service("company-b", ServiceProfile.build(
        "bft", "ncw:BlueForceTrackingService",
        outputs=["ncw:GroundTrack", "ncw:GridPosition"],
        qos={"update_rate_hz": 0.5},
    ))

    client = system.add_client("company-b")
    system.run(until=5.0)

    print("== 1. opportunistic WAN discovery with subsumption + QoS ==")
    request = ServiceRequest.build(
        "ncw:SensorService",            # any sensor...
        outputs=["ncw:Track"],          # ...producing tracks...
        qos={"coverage_km": (50.0, None)},  # ...covering >= 50 km
    )
    call = system.discover(client, request)
    print(f"  sensors with >=50km coverage: {call.service_names()}")
    assert call.service_names() == ["asr-1"]  # only the battalion radar

    relaxed = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])
    call = system.discover(client, relaxed)
    print(f"  any track-producing sensor : {sorted(call.service_names())}")

    print("== 2. WAN partition between hq and the companies ==")
    system.network.partition([["battalion-hq"], ["company-a", "company-b"]])
    call = system.discover(client, relaxed, timeout=30.0)
    print(f"  during partition           : {sorted(call.service_names())}")
    assert "asr-1" not in call.service_names()
    assert "uav-cam" in call.service_names()  # same-branch discovery works

    print("== 3. partition heals ==")
    system.network.heal_partition()
    call = system.discover(client, relaxed, timeout=30.0)
    print(f"  after healing              : {sorted(call.service_names())}")
    assert "asr-1" in call.service_names()

    gateway = registries["company-b"].federation.gateway()
    print(f"  company-b LAN gateway      : {gateway}")


if __name__ == "__main__":
    main()
