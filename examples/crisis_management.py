"""The paper's §1 scenario: multi-agency crisis response.

"An example of a dynamic environment could be a crisis management scenario
where members from several agencies, potentially at different locations,
have to cooperate … their different applications are not always designed
to work together."

Four agencies (medical, fire, police, logistics) each run a LAN with one
registry; the registries federate into a ring. The script walks through:

1. cross-agency discovery (a police client finds a medical service),
2. a registry crash — queries fall back to LAN multicast, then fail over,
3. the registry's restart — leases repopulate it automatically.

Run:  python examples/crisis_management.py
"""

from repro.core.config import DiscoveryConfig
from repro.workloads.scenarios import build_scenario, crisis_scenario
from repro.semantics.profiles import ServiceRequest


def main() -> None:
    spec = crisis_scenario(agencies=4, services_per_lan=3, clients_per_lan=1,
                           federation="ring", seed=7)
    config = DiscoveryConfig(
        lease_duration=10.0, purge_interval=2.0, beacon_interval=3.0,
        query_timeout=3.0, aggregation_timeout=0.3,
    )
    built = build_scenario(spec, config=config)
    system = built.system
    system.run(until=5.0)

    police_client = next(
        c for c in built.clients if c.lan_name == "agency-police"
    )
    request = ServiceRequest.build(
        "ems:MedicalService", outputs=["ems:Report"], max_results=3
    )

    print("== phase 1: normal cross-agency discovery ==")
    call = system.discover(police_client, request)
    print(f"  via {call.via}: {call.service_names() or 'no medical reporters deployed'}")

    # Whatever the generated workload contains, a broad info-service query
    # must find something somewhere:
    broad = ServiceRequest.build("ems:Service", max_results=5)
    call = system.discover(police_client, broad)
    print(f"  broad query -> {len(call.hits)} services (capped at 5), "
          f"e.g. {call.service_names()[:3]}")

    print("== phase 2: the police registry crashes ==")
    police_registry = next(
        r for r in built.registries if r.lan_name == "agency-police"
    )
    police_registry.crash()
    system.run_for(1.0)
    call = system.discover(police_client, broad, timeout=30.0)
    print(f"  via {call.via}: {len(call.hits)} services "
          f"(attempt(s): {call.attempts})")

    print("== phase 3: registry restarts; leases repopulate it ==")
    police_registry.restart()
    system.run_for(15.0)
    call = system.discover(police_client, broad, timeout=30.0)
    print(f"  via {call.via}: {len(call.hits)} services")
    print(f"  police registry store rebuilt: "
          f"{len(police_registry.store)} advertisements")

    stats = system.traffic()
    print("== traffic summary ==")
    print(f"  messages: {stats['messages_sent']}, "
          f"bytes: {stats['bytes_sent']:,}, WAN bytes: {stats['bytes_wan']:,}")


if __name__ == "__main__":
    main()
