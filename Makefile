PYTHON ?= python
export PYTHONPATH := src

.PHONY: test perf-smoke fault-smoke obs-smoke overload-smoke routing-smoke recovery-smoke health-smoke shard-smoke bench all

## Tier 1: the full unit/integration suite. Must always be green.
test:
	$(PYTHON) -m pytest -x -q

## Tier 2: perf smoke for the registry query path. Fails if the indexed
## path ever evaluates more profiles than the linear scan, if the
## evaluation reduction at 10k advertisements drops below 5x, or if the
## 100k scaling sweep breaks its count-based sub-linear gates (fitted
## evaluations-per-query growth exponent < 1.0, absolute cap at 100k).
## Rewrites BENCH_matchmaking.json and BENCH_query_100k.json at the repo
## root.
perf-smoke:
	$(PYTHON) -m pytest benchmarks/test_perf_matchmaking.py -q

## Tier 2: fault smoke — the canonical E3/E11 fault scenarios plus the
## anti-entropy convergence sweep and the circuit-breaker degraded-latency
## check. Fails if replicated stores do not reconverge within bounded
## rounds or the invariant sweeps find bookkeeping rot.
fault-smoke:
	$(PYTHON) -m pytest benchmarks/test_fault_smoke.py -q

## Tier 2: observability smoke — two same-seed E7 WAN runs must export
## byte-identical trace JSONL, the trace must cover the query path
## end-to-end, and E1/E5/E7 tables must carry latency percentiles.
obs-smoke:
	$(PYTHON) -m pytest benchmarks/test_obs_smoke.py -q

## Tier 2: overload smoke — replays the E17 query flood at a fixed seed
## and asserts the shape of overload protection: lease renewals outlive
## queries under saturation, BUSY retry-after hints are monotone in
## queue depth, goodput plateaus instead of cliffing, and the flood is
## deterministic.
overload-smoke:
	$(PYTHON) -m pytest benchmarks/test_e17_overload.py -q

## Tier 2: routing smoke — replays the E18 skewed flood at a fixed seed
## and asserts that least-loaded routing beats static order on p99
## discovery latency AND in-window goodput at 4x single-registry
## capacity, that adaptive routing is same-seed deterministic, and that
## the default (static) configuration stays byte-identical to the
## pre-routing behavior regardless of routing tunables.
routing-smoke:
	$(PYTHON) -m pytest benchmarks/test_e18_routing.py -q

## Tier 2: recovery smoke — replays the E19 whole-LAN blackout at a
## fixed seed and asserts the durability gates: >= 99% of non-expired
## advertisements recovered from local WAL+snapshot replay alone with
## zero re-publish traffic, time-to-full-query-success at least 5x
## better than memory-only, injected torn/corrupt disk faults survived
## without crashing recovery, and the default (durability off)
## configuration attaching no disks at all.
recovery-smoke:
	$(PYTHON) -m pytest benchmarks/test_e19_recovery.py -q

## Tier 2: health smoke — replays the E20 fault sequence at a fixed seed
## and asserts the runtime health layer's gates: zero alarms on the
## clean control run, every injected fault class (flood, crash,
## partition) raising its matched alarm in-window with a flight-recorder
## dump attached, byte-identical same-seed alarm timelines and dumps,
## and the default (health off) configuration exporting byte-identical
## traces for the same faulted scenario.
health-smoke:
	$(PYTHON) -m pytest benchmarks/test_e20_health.py -q

## Tier 2: shard smoke — replays the E21 sharded-federation scenario at
## a fixed seed and asserts its gates: per-node store load and digest
## bytes tracking ~K*R/S on the 100k-ad ring sweep, join/leave moving
## no more than K*R/S copies, probe success >= 0.99 while R-1 replicas
## of a shard are fail-stopped, a clean placement/convergence sweep at
## the end, byte-identical same-seed traces, and the default (sharding
## off) configuration exporting byte-identical traces with every shard
## counter at zero.
shard-smoke:
	$(PYTHON) -m pytest benchmarks/test_e21_sharding.py -q

## Full experiment/benchmark sweep (slow).
bench:
	$(PYTHON) -m pytest benchmarks -q

all: test perf-smoke fault-smoke obs-smoke overload-smoke routing-smoke recovery-smoke health-smoke shard-smoke
